package cluster

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"somrm/internal/resilience"
	"somrm/internal/server"
	"somrm/internal/spec"
)

// Client routes solver requests across a cluster: each request's model is
// hashed canonically (spec.Hash), the consistent-hash ring names the
// owning replica, and the request goes there first — so every replica's
// result and prepared-model caches serve a stable shard of the keyspace.
// When the owner is down, tripped, or shedding, the client fails over
// along the ring successors; solves are deterministic and idempotent, so
// a failover result is bitwise identical to the owner's.
//
// Each peer gets its own server.Client (retry/backoff stack) with a
// per-peer circuit breaker from a shared registry: one dead replica fails
// fast without poisoning the healthy peers' windows.
//
// A single-URL Client collapses to exactly one server.Client — today's
// single-server behavior, bit for bit.
type Client struct {
	ring    *Ring
	members *Membership
	reg     *resilience.BreakerRegistry
	clients map[string]*server.Client

	// single short-circuits routing for one-URL clusters.
	single *server.Client
}

// Option configures a cluster Client.
type Option func(*clientConfig)

type clientConfig struct {
	vnodes        int
	probeInterval time.Duration
	clientOpts    []server.ClientOption
	breakerCfg    resilience.BreakerConfig
}

// WithClientOptions forwards server.ClientOptions (retry policy, budget,
// transport) to every per-peer client.
func WithClientOptions(opts ...server.ClientOption) Option {
	return func(c *clientConfig) { c.clientOpts = append(c.clientOpts, opts...) }
}

// WithVirtualNodes overrides the ring's virtual-node count (0 keeps
// DefaultVirtualNodes).
func WithVirtualNodes(n int) Option {
	return func(c *clientConfig) { c.vnodes = n }
}

// WithProbeInterval enables background /healthz probing of the peers at
// the given interval (0, the default, disables it: liveness then updates
// only from request outcomes, which suits one-shot CLI use).
func WithProbeInterval(d time.Duration) Option {
	return func(c *clientConfig) { c.probeInterval = d }
}

// WithPeerBreakerConfig overrides the per-peer circuit breaker
// configuration (zero fields keep the resilience defaults).
func WithPeerBreakerConfig(cfg resilience.BreakerConfig) Option {
	return func(c *clientConfig) { c.breakerCfg = cfg }
}

// NewClient builds a cluster client over the given replica base URLs.
func NewClient(urls []string, opts ...Option) *Client {
	var cfg clientConfig
	for _, o := range opts {
		o(&cfg)
	}
	ring := NewRing(urls, cfg.vnodes)
	nodes := ring.Nodes()
	c := &Client{
		ring:    ring,
		reg:     resilience.NewBreakerRegistry(cfg.breakerCfg),
		clients: make(map[string]*server.Client, len(nodes)),
	}
	for _, u := range nodes {
		perPeer := append(append([]server.ClientOption(nil), cfg.clientOpts...),
			server.WithSharedBreaker(c.reg.For(u)))
		c.clients[u] = server.NewClient(u, perPeer...)
	}
	if len(nodes) == 1 {
		c.single = c.clients[nodes[0]]
	}
	var probe ProbeFunc
	if cfg.probeInterval > 0 {
		probe = func(ctx context.Context, url string) error {
			return c.clients[url].Health(ctx)
		}
	}
	c.members = NewMembership(nodes, probe, cfg.probeInterval)
	if probe != nil {
		c.members.Start()
	}
	return c
}

// Close stops the background health probing, if enabled.
func (c *Client) Close() {
	c.members.Stop()
}

// Ring exposes the client's placement ring (tests and diagnostics).
func (c *Client) Ring() *Ring { return c.ring }

// BreakerStates returns each peer's circuit-breaker state keyed by URL.
func (c *Client) BreakerStates() map[string]string { return c.reg.States() }

// specHashHex canonically hashes a request's model — the routing key.
func specHashHex(m *spec.Model) (string, error) {
	if m == nil {
		return "", errors.New("cluster: missing model")
	}
	h, err := m.Hash()
	if err != nil {
		return "", fmt.Errorf("cluster: unhashable model: %w", err)
	}
	return hex.EncodeToString(h[:]), nil
}

// candidates returns every replica in failover order for a routing key:
// ring order starting at the owner, live replicas first. Dead-marked
// replicas stay at the tail rather than being skipped — a stale "down"
// must never make a key unreachable.
func (c *Client) candidates(key string) []string {
	succ := c.ring.Successors(key, len(c.clients))
	ordered := make([]string, 0, len(succ))
	var dead []string
	for _, u := range succ {
		if c.members.Alive(u) {
			ordered = append(ordered, u)
		} else {
			dead = append(dead, u)
		}
	}
	return append(ordered, dead...)
}

// failoverWorthy reports whether an error from one replica justifies
// trying the next: transport-level failures, 503s and truncated bodies
// (marked transient by the inner client), breaker fail-fasts, exhausted
// retry budgets, and 5xx responses. 4xx responses are deterministic —
// every replica would answer the same — and are returned immediately.
func failoverWorthy(err error) bool {
	if resilience.IsTransient(err) ||
		errors.Is(err, resilience.ErrBreakerOpen) ||
		errors.Is(err, resilience.ErrBudgetExhausted) {
		return true
	}
	var apiErr *server.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode >= 500
}

// connectionError reports whether err was a transport-level failure (no
// HTTP response at all) — the signal for marking a peer down immediately.
func connectionError(err error) bool {
	var apiErr *server.APIError
	return resilience.IsTransient(err) && !errors.As(err, &apiErr)
}

// ErrNoReplicas reports a cluster client whose ring holds zero replica
// URLs (an empty or all-blank server list); no request can be routed.
var ErrNoReplicas = errors.New("cluster: no replica URLs configured")

// route runs op against each candidate replica for key until one
// succeeds or an error is deemed deterministic.
func (c *Client) route(ctx context.Context, key string, op func(cl *server.Client) error) error {
	cands := c.candidates(key)
	if len(cands) == 0 {
		return ErrNoReplicas
	}
	var lastErr error
	for _, peer := range cands {
		err := op(c.clients[peer])
		if err == nil {
			c.members.MarkAlive(peer)
			return nil
		}
		if connectionError(err) {
			c.members.MarkDown(peer)
		}
		if ctx.Err() != nil || !failoverWorthy(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// Solve routes one solve to its owning replica, failing over along the
// ring. With a single configured URL it is exactly server.Client.Solve.
func (c *Client) Solve(ctx context.Context, req *server.SolveRequest) (*server.SolveResponse, error) {
	if c.single != nil {
		return c.single.Solve(ctx, req)
	}
	key, err := specHashHex(req.Model)
	if err != nil {
		return nil, err
	}
	var resp *server.SolveResponse
	if err := c.route(ctx, key, func(cl *server.Client) error {
		var opErr error
		resp, opErr = cl.Solve(ctx, req)
		return opErr
	}); err != nil {
		return nil, err
	}
	return resp, nil
}

// SolveBatch routes one batch (one model, many grids) to its owning
// replica, failing over along the ring.
func (c *Client) SolveBatch(ctx context.Context, req *server.BatchRequest) (*server.BatchResponse, error) {
	if c.single != nil {
		return c.single.SolveBatch(ctx, req)
	}
	key, err := specHashHex(req.Model)
	if err != nil {
		return nil, err
	}
	var resp *server.BatchResponse
	if err := c.route(ctx, key, func(cl *server.Client) error {
		var opErr error
		resp, opErr = cl.SolveBatch(ctx, req)
		return opErr
	}); err != nil {
		return nil, err
	}
	return resp, nil
}
