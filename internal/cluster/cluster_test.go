package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"somrm/internal/resilience"
	"somrm/internal/server"
	"somrm/internal/spec"
	"somrm/internal/testutil"
)

// testSpec returns a small two-state model whose recovery rate varies
// with k, giving distinct routing keys per k.
func testSpec(k int) *spec.Model {
	return &spec.Model{
		States: 2,
		Transitions: []spec.Transition{
			{From: 0, To: 1, Rate: 2},
			{From: 1, To: 0, Rate: 3 + float64(k)/7},
		},
		Rates:     []float64{1.5, -0.5},
		Variances: []float64{0.2, 1},
		Initial:   []float64{1, 0},
	}
}

// refMoments computes the core solver's answer for testSpec(k) at time t —
// the bitwise ground truth every replica must reproduce.
func refMoments(t *testing.T, k int, at float64, order int) []float64 {
	t.Helper()
	model, err := testSpec(k).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.AccumulatedRewardAt([]float64{at}, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res[0].Moments
}

func assertBitwise(t *testing.T, got, want []float64, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d moments, want %d", context, len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("%s: moment %d = %x, want %x (not bitwise identical)",
				context, j, got[j], want[j])
		}
	}
}

// fastPeerOpts keeps per-peer clients snappy under test: two attempts
// with millisecond backoff instead of the production 50ms base.
func fastPeerOpts() []server.ClientOption {
	return []server.ClientOption{
		server.WithRetryPolicy(resilience.RetryPolicy{
			MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		}),
	}
}

// testCluster boots n replicas that know each other's real URLs. The
// chicken-and-egg (peer URLs are needed to build a node, the node handler
// is needed to serve the URL) is broken with unstarted httptest servers:
// their listener addresses exist before any handler is attached.
type testCluster struct {
	t     *testing.T
	urls  []string
	nodes []*Node
	srvs  []*httptest.Server
	down  []sync.Once
}

func startCluster(t *testing.T, n int, srvOpts server.Options, probe time.Duration, mutate ...func(*NodeOptions)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, down: make([]sync.Once, n)}
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		tc.srvs = append(tc.srvs, ts)
		tc.urls = append(tc.urls, "http://"+ts.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range tc.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nopts := NodeOptions{
			Self:          tc.urls[i],
			Peers:         peers,
			Server:        srvOpts,
			ProbeInterval: probe,
			PeerTimeout:   2 * time.Second,
			ClientOptions: fastPeerOpts(),
		}
		for _, m := range mutate {
			m(&nopts)
		}
		node, err := NewNode(nopts)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)
		tc.srvs[i].Config.Handler = node.Handler()
		tc.srvs[i].Start()
	}
	t.Cleanup(func() {
		for i := range tc.nodes {
			tc.shutdown(i)
		}
	})
	return tc
}

// kill simulates a crash: client connections are severed and the listener
// closes, with no drain. Safe to call concurrently and repeatedly.
func (tc *testCluster) kill(i int) {
	tc.down[i].Do(func() {
		tc.srvs[i].CloseClientConnections()
		tc.srvs[i].Close()
	})
	// The node's pool/probe goroutines are reaped by the test cleanup.
}

// shutdown drains node i gracefully (handoff runs while the peers are
// still serving), then closes its listener.
func (tc *testCluster) shutdown(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.nodes[i].Shutdown(ctx); err != nil {
		tc.t.Errorf("node %d shutdown: %v", i, err)
	}
	tc.down[i].Do(func() { tc.srvs[i].Close() })
}

// ownerIndex resolves which replica owns a model.
func (tc *testCluster) ownerIndex(sp *spec.Model) int {
	key, err := specHashHex(sp)
	if err != nil {
		tc.t.Fatal(err)
	}
	owner := tc.nodes[0].Ring().Owner(key)
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	tc.t.Fatalf("owner %q is not a cluster member", owner)
	return -1
}

func TestClientRoutesEveryKeyToItsOwner(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tc := startCluster(t, 3, server.Options{Workers: 2}, -1)
	cc := NewClient(tc.urls, WithClientOptions(fastPeerOpts()...))
	defer cc.Close()

	const distinct = 12
	const order = 2
	for k := 0; k < distinct; k++ {
		resp, err := cc.Solve(context.Background(), &server.SolveRequest{Model: testSpec(k), T: 1, Order: order})
		if err != nil {
			t.Fatalf("solve %d: %v", k, err)
		}
		assertBitwise(t, resp.Moments, refMoments(t, k, 1, order), "routed solve")
	}

	// Every request must have landed on its ring owner: the owners saw
	// them as local, and nobody saw a remote request.
	var local, remote int64
	for i, n := range tc.nodes {
		m := n.Server().Metrics()
		local += m.RouteLocal.Load()
		if r := m.RouteRemote.Load(); r != 0 {
			t.Errorf("replica %d served %d requests it does not own", i, r)
		}
		remote += m.RouteRemote.Load()
	}
	if local != distinct {
		t.Errorf("owners saw %d local requests, want %d", local, distinct)
	}

	// The client's ring and every node's ring must agree on placement.
	for k := 0; k < distinct; k++ {
		key, err := specHashHex(testSpec(k))
		if err != nil {
			t.Fatal(err)
		}
		want := cc.Ring().Owner(key)
		for i, n := range tc.nodes {
			if got := n.Ring().Owner(key); got != want {
				t.Fatalf("replica %d places key %s… on %q, client on %q", i, key[:12], got, want)
			}
		}
	}

	// Healthy cluster: every per-peer breaker is closed.
	for peer, state := range cc.BreakerStates() {
		if state != "closed" {
			t.Errorf("breaker for %s is %q, want closed", peer, state)
		}
	}
}

func TestClientSingleURLIsPlainPassthrough(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tc := startCluster(t, 1, server.Options{Workers: 2}, -1)
	cc := NewClient(tc.urls, WithClientOptions(fastPeerOpts()...))
	defer cc.Close()
	if cc.single == nil {
		t.Fatal("single-URL client must collapse to the plain server client")
	}

	req := &server.SolveRequest{Model: testSpec(0), T: 1.5, Order: 3}
	resp, err := cc.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, resp.Moments, refMoments(t, 0, 1.5, 3), "single-URL solve")
	again, err := cc.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat solve should be a cache hit")
	}
}

// TestPeerFillAvoidsDuplicateSolve is the cache-fill acceptance check: a
// non-owner serving a hash the owner has cached must adopt the owner's
// result over the peer endpoint instead of solving — the owner's solve
// and prepared-build counters stay put, and the moments are bitwise the
// owner's.
func TestPeerFillAvoidsDuplicateSolve(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tc := startCluster(t, 3, server.Options{Workers: 2}, -1)

	sp := testSpec(0)
	ownerIdx := tc.ownerIndex(sp)
	nonOwner := (ownerIdx + 1) % len(tc.nodes)
	req := &server.SolveRequest{Model: sp, T: 1.25, Order: 3}

	// Prime the owner's result cache with a direct solve.
	direct := server.NewClient(tc.urls[ownerIdx], fastPeerOpts()...)
	base, err := direct.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ownerM := tc.nodes[ownerIdx].Server().Metrics()
	solvesBefore := ownerM.Solves.Load()
	preparedBefore := ownerM.PreparedMisses.Load()

	// The same request against a non-owner must be served by peer fill.
	other := server.NewClient(tc.urls[nonOwner], fastPeerOpts()...)
	resp, err := other.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.PeerFilled {
		t.Error("non-owner response not marked peer_filled")
	}
	assertBitwise(t, resp.Moments, base.Moments, "peer-filled solve")

	m := tc.nodes[nonOwner].Server().Metrics()
	if got := m.PeerFillHits.Load(); got != 1 {
		t.Errorf("non-owner peer_fill_hits = %d, want 1", got)
	}
	if got := m.Solves.Load(); got != 0 {
		t.Errorf("non-owner ran %d solves; the fill should have avoided all of them", got)
	}
	if got := m.RouteRemote.Load(); got != 1 {
		t.Errorf("non-owner route_remote = %d, want 1", got)
	}
	if got := ownerM.Solves.Load(); got != solvesBefore {
		t.Errorf("owner solves went %d -> %d while serving a peer fill", solvesBefore, got)
	}
	if got := ownerM.PreparedMisses.Load(); got != preparedBefore {
		t.Errorf("owner prepared builds went %d -> %d while serving a peer fill", preparedBefore, got)
	}

	// The fill was adopted into the non-owner's own cache — as a plain
	// entry: a later local hit reports Cached only, not PeerFilled (that
	// flag describes the filling request's path, not the entry).
	again, err := other.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat solve at the non-owner should hit its local cache")
	}
	if again.PeerFilled {
		t.Error("local cache hit must not report peer_filled")
	}

	// A hash the owner has never seen is a fill miss and solves locally.
	cold := &server.SolveRequest{Model: testSpec(1), T: 0.75, Order: 2}
	if tc.ownerIndex(cold.Model) == nonOwner {
		cold.Model = testSpec(2) // pick any model the replica does not own
	}
	missResp, err := other.Solve(context.Background(), cold)
	if err != nil {
		t.Fatal(err)
	}
	if missResp.PeerFilled || missResp.Cached {
		t.Error("cold solve should have been computed locally")
	}
	if got := m.PeerFillMisses.Load(); got < 1 {
		t.Errorf("non-owner peer_fill_misses = %d, want >= 1", got)
	}
}

// TestDrainHandoffMigratesHotEntries checks the graceful-drain path: a
// draining replica streams its hot result and prepared-model entries to
// the ring successor, which then serves the hash from cache without ever
// solving it.
func TestDrainHandoffMigratesHotEntries(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tc := startCluster(t, 3, server.Options{Workers: 2}, -1)

	sp := testSpec(0)
	ownerIdx := tc.ownerIndex(sp)
	req := &server.SolveRequest{Model: sp, T: 2, Order: 3}

	direct := server.NewClient(tc.urls[ownerIdx], fastPeerOpts()...)
	base, err := direct.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// The handoff destination is the first ring successor after the owner.
	key, err := specHashHex(sp)
	if err != nil {
		t.Fatal(err)
	}
	succ := tc.nodes[ownerIdx].Ring().Successors(key, len(tc.nodes))
	if succ[0] != tc.urls[ownerIdx] {
		t.Fatalf("owner mismatch: %q vs %q", succ[0], tc.urls[ownerIdx])
	}
	destIdx := -1
	for i, u := range tc.urls {
		if u == succ[1] {
			destIdx = i
		}
	}
	if destIdx < 0 {
		t.Fatalf("successor %q is not a cluster member", succ[1])
	}

	tc.shutdown(ownerIdx)

	dm := tc.nodes[destIdx].Server().Metrics()
	// One result entry plus one prepared-model spec.
	if got := dm.HandoffEntries.Load(); got < 2 {
		t.Fatalf("successor accepted %d handoff entries, want >= 2", got)
	}

	// The successor serves the migrated result from cache, bitwise equal,
	// without solving.
	cl := server.NewClient(tc.urls[destIdx], fastPeerOpts()...)
	resp, err := cl.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("migrated result should be a cache hit on the successor")
	}
	assertBitwise(t, resp.Moments, base.Moments, "migrated result")
	if got := dm.Solves.Load(); got != 0 {
		t.Errorf("successor ran %d solves; the handoff should have avoided them", got)
	}

	// The prepared model migrated too: a batch against the successor is a
	// prepared-cache hit (the only build was the handoff acceptance).
	preparedMissesAfterHandoff := dm.PreparedMisses.Load()
	batch := &server.BatchRequest{
		Model: sp,
		Items: []server.BatchItem{{Times: []float64{0.5, 1}, Order: 2}},
	}
	if _, err := cl.SolveBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if got := dm.PreparedHits.Load(); got < 1 {
		t.Errorf("successor prepared_hits = %d, want >= 1 (prepared entry should have migrated)", got)
	}
	if got := dm.PreparedMisses.Load(); got != preparedMissesAfterHandoff {
		t.Errorf("successor rebuilt the prepared model (%d -> %d misses) despite the handoff",
			preparedMissesAfterHandoff, got)
	}
}

// typedClusterError mirrors the single-node chaos invariant: under
// faults the cluster client may surface typed API errors, breaker
// fail-fasts, exhausted budgets, or transient transport failures — never
// an untyped error or corrupted success.
func typedClusterError(err error) bool {
	var apiErr *server.APIError
	return errors.As(err, &apiErr) ||
		errors.Is(err, resilience.ErrBreakerOpen) ||
		errors.Is(err, resilience.ErrBudgetExhausted) ||
		resilience.IsTransient(err)
}

// TestClusterKillReplicaMidStorm is the cluster chaos drill: three
// replicas serve a concurrent storm, the owner of one shard is killed
// without warning mid-storm, and every request must still end in either
// a typed error or moments bitwise identical to the core solver. After
// the storm the dead replica's shard must be reachable via failover.
func TestClusterKillReplicaMidStorm(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tc := startCluster(t, 3, server.Options{Workers: 2, QueueSize: 128}, -1)

	cc := NewClient(tc.urls,
		WithClientOptions(fastPeerOpts()...),
		WithPeerBreakerConfig(resilience.BreakerConfig{
			Window: 8, FailureRatio: 0.5, MinSamples: 4,
			Cooldown: 50 * time.Millisecond, HalfOpenProbes: 1,
		}))
	defer cc.Close()

	const distinct = 6
	const order = 2
	refs := make([][]float64, distinct)
	for k := range refs {
		refs[k] = refMoments(t, k, 1, order)
	}
	victim := tc.ownerIndex(testSpec(0))

	const goroutines = 10
	const repsEach = 6
	var ok, failed atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < repsEach; r++ {
				if g == 0 && r == 2 {
					killOnce.Do(func() { tc.kill(victim) })
				}
				k := (g + r) % distinct
				resp, err := cc.Solve(context.Background(),
					&server.SolveRequest{Model: testSpec(k), T: 1, Order: order})
				if err != nil {
					if !typedClusterError(err) {
						t.Errorf("untyped storm error: %v", err)
					}
					failed.Add(1)
					continue
				}
				ok.Add(1)
				assertBitwise(t, resp.Moments, refs[k], "storm solve")
			}
		}(g)
	}
	wg.Wait()
	killOnce.Do(func() { tc.kill(victim) }) // in case the killer goroutine errored out early
	if ok.Load() == 0 {
		t.Fatal("no request succeeded during the storm")
	}
	t.Logf("storm: %d ok, %d typed failures", ok.Load(), failed.Load())

	// The dead replica's shard fails over: its keys now come from a ring
	// successor, bitwise identical to the reference.
	for k := 0; k < distinct; k++ {
		resp, err := cc.Solve(context.Background(),
			&server.SolveRequest{Model: testSpec(k), T: 1, Order: order})
		if err != nil {
			t.Fatalf("post-kill solve %d: %v", k, err)
		}
		assertBitwise(t, resp.Moments, refs[k], "failover solve")
	}

	// The survivors never produced anything but typed errors, so the
	// client should have marked only the victim down.
	if alive := cc.members.AliveCount(); alive != len(tc.urls)-1 {
		t.Errorf("membership sees %d live replicas, want %d", alive, len(tc.urls)-1)
	}
}

func TestNewNodeRejectsEmptySelf(t *testing.T) {
	if _, err := NewNode(NodeOptions{}); err == nil {
		t.Fatal("NewNode with no self URL must fail")
	}
}

// TestClientNoReplicasIsTypedError pins the empty-cluster behavior: a
// client whose URL list collapsed to nothing (nil, or all-blank tokens
// like "-server ,") must return ErrNoReplicas, never (nil, nil).
func TestClientNoReplicasIsTypedError(t *testing.T) {
	cc := NewClient(nil)
	defer cc.Close()

	resp, err := cc.Solve(context.Background(), &server.SolveRequest{Model: testSpec(0), T: 1, Order: 2})
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("Solve on empty cluster: err = %v, want ErrNoReplicas", err)
	}
	if resp != nil {
		t.Fatal("Solve on empty cluster returned a non-nil response")
	}
	bresp, err := cc.SolveBatch(context.Background(), &server.BatchRequest{
		Model: testSpec(0),
		Items: []server.BatchItem{{Times: []float64{1}, Order: 2}},
	})
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("SolveBatch on empty cluster: err = %v, want ErrNoReplicas", err)
	}
	if bresp != nil {
		t.Fatal("SolveBatch on empty cluster returned a non-nil response")
	}
}

// TestClusterPeerSecret runs a secret-bearing cluster end to end: the
// replicas authenticate each other's peer calls (cache fill still works),
// while unauthenticated peer requests are refused with 403.
func TestClusterPeerSecret(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	const secret = "ring-secret"
	tc := startCluster(t, 3, server.Options{Workers: 2}, -1,
		func(o *NodeOptions) { o.PeerSecret = secret })

	sp := testSpec(0)
	ownerIdx := tc.ownerIndex(sp)
	nonOwner := (ownerIdx + 1) % len(tc.nodes)
	req := &server.SolveRequest{Model: sp, T: 1.25, Order: 3}

	// Prime the owner, then solve at a non-owner: the fill must succeed
	// because the replicas share the secret.
	direct := server.NewClient(tc.urls[ownerIdx], fastPeerOpts()...)
	if _, err := direct.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	other := server.NewClient(tc.urls[nonOwner], fastPeerOpts()...)
	resp, err := other.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.PeerFilled {
		t.Error("peer cache fill failed in a secret-bearing cluster")
	}

	// A client without the secret is locked out of the peer endpoints.
	key, err := specHashHex(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := direct.PeerResult(context.Background(), key); !isForbidden(err) {
		t.Errorf("unauthenticated peer result: err = %v, want HTTP 403", err)
	}
	if _, err := direct.PushHandoff(context.Background(), []server.HandoffEntry{
		{Key: key, SpecHash: key, Response: resp},
	}); !isForbidden(err) {
		t.Errorf("unauthenticated handoff: err = %v, want HTTP 403", err)
	}

	// With the secret, the same calls pass auth.
	authed := server.NewClient(tc.urls[ownerIdx],
		append(fastPeerOpts(), server.WithPeerSecret(secret))...)
	if _, found, err := authed.PeerResult(context.Background(), key); err != nil {
		t.Errorf("authenticated peer result failed: %v", err)
	} else if found {
		// The owner caches by full result key, not spec hash; a miss is
		// the expected answer here — auth passing is what matters.
		t.Log("peer result unexpectedly found by spec hash")
	}
}

func isForbidden(err error) bool {
	var apiErr *server.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusForbidden
}
