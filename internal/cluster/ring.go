// Package cluster scales the somrm solver service from one process to a
// fleet: a consistent-hash ring assigns every model (by its canonical
// spec hash) to an owning replica, a membership table tracks replica
// liveness through /healthz probes, a cluster-aware Client routes solves
// to the owner and fails over along the ring, and a Node wires a server
// into the cluster (ownership metrics, peer cache fill, drain handoff).
//
// Placement is deterministic: the ring is built from the peer URL list
// alone, so every replica and every client computes identical ownership
// without any coordination, and placement survives process restarts.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the number of ring points per replica. 160
// points smooth the shard sizes to within a few percent of uniform and
// keep the remap fraction on membership change near the ideal 1/n.
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring over a set of node URLs with
// virtual nodes. Keys (canonical spec hashes) map to the first ring point
// clockwise from the key's hash; removing a node moves only the keys it
// owned, and adding one steals only the keys it now owns.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct node URLs, sorted
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the distinct node URLs with vnodes virtual
// points per node (0 selects DefaultVirtualNodes). An empty node list
// yields a ring whose Owner is "".
func NewRing(nodeURLs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodeURLs))
	var nodes []string
	for _, n := range nodeURLs {
		if n != "" && !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for i, n := range nodes {
		for v := 0; v < vnodes; v++ {
			// The point label pins placement across processes and
			// restarts: it depends only on the node URL and the vnode
			// index, never on insertion order or process state.
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		// Tie-break on node index so equal hashes (astronomically rare but
		// possible) still sort deterministically.
		return p.node < q.node
	})
	return r
}

// ringHash maps a label or key onto the ring's 64-bit keyspace. SHA-256
// (truncated) keeps placement uniform and — unlike Go's runtime map hash —
// identical across processes, which the whole design depends on.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's distinct node URLs in sorted order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Owner returns the node owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.search(key)].node]
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner: the owner first, then the replicas a client should fail
// over to (and a drainer should hand off to), in order.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, at := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(at+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// search returns the index of the first ring point clockwise from key.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrap around
	}
	return i
}
