package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMembershipProbeFlipsLiveness(t *testing.T) {
	var bDown atomic.Bool
	probe := func(ctx context.Context, url string) error {
		if url == "http://b" && bDown.Load() {
			return errors.New("probe: down")
		}
		return nil
	}
	m := NewMembership([]string{"http://a", "http://b"}, probe, 5*time.Millisecond)
	m.Start()
	defer m.Stop()

	// Peers start optimistically alive, before any probe has run.
	if !m.Alive("http://a") || !m.Alive("http://b") {
		t.Fatal("peers must start alive")
	}
	if got := m.AliveCount(); got != 2 {
		t.Fatalf("AliveCount = %d, want 2", got)
	}

	bDown.Store(true)
	waitFor(t, "probe to mark b down", func() bool { return !m.Alive("http://b") })
	if !m.Alive("http://a") {
		t.Error("a must stay alive while b is down")
	}

	bDown.Store(false)
	waitFor(t, "probe to restore b", func() bool { return m.Alive("http://b") })
}

func TestMembershipManualMarks(t *testing.T) {
	m := NewMembership([]string{"http://a"}, nil, 0)

	m.MarkDown("http://a")
	if m.Alive("http://a") {
		t.Error("MarkDown must take effect")
	}
	m.MarkAlive("http://a")
	if !m.Alive("http://a") {
		t.Error("MarkAlive must take effect")
	}

	// Unknown peers are never adopted: the peer set is static.
	m.MarkAlive("http://ghost")
	if m.Alive("http://ghost") {
		t.Error("unknown peer must stay dead")
	}
	if got := len(m.Peers()); got != 1 {
		t.Errorf("Peers() has %d entries, want 1", got)
	}

	// Stop without Start must not hang.
	m.Stop()
}

// TestMembershipStaleProbeCannotOverrideDirectObservation pins the
// generation stamping: a probe that was already in flight when a request
// marked the peer down must discard its (stale) success instead of
// resurrecting the peer; the next full probe round flips state again.
func TestMembershipStaleProbeCannotOverrideDirectObservation(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	probe := func(ctx context.Context, url string) error {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
		}
		return nil
	}
	m := NewMembership([]string{"http://a"}, probe, time.Hour)

	done := make(chan struct{})
	go func() { m.probeAll(); close(done) }()
	<-entered
	// A request hits a transport failure while the probe is mid-flight.
	m.MarkDown("http://a")
	close(release)
	<-done
	if m.Alive("http://a") {
		t.Fatal("stale probe success resurrected a peer a request just found dead")
	}

	// A probe that starts after the direct observation is fresher and may
	// flip the peer back.
	m.probeAll()
	if !m.Alive("http://a") {
		t.Fatal("fresh successful probe must restore the peer")
	}
}

func TestMembershipStopTerminatesProbeLoop(t *testing.T) {
	var probes atomic.Int64
	probe := func(ctx context.Context, url string) error {
		probes.Add(1)
		return nil
	}
	m := NewMembership([]string{"http://a"}, probe, time.Millisecond)
	m.Start()
	waitFor(t, "first probe", func() bool { return probes.Load() > 0 })
	m.Stop()
	at := probes.Load()
	time.Sleep(20 * time.Millisecond)
	if got := probes.Load(); got != at {
		t.Errorf("probe loop still running after Stop (%d -> %d probes)", at, got)
	}
	m.Stop() // idempotent
}
