package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"somrm/internal/resilience"
	"somrm/internal/server"
)

// NodeOptions configures one cluster replica.
type NodeOptions struct {
	// Self is this replica's advertised base URL (how peers reach it),
	// e.g. "http://10.0.0.3:8639". It is added to the ring automatically.
	Self string
	// Peers are the other replicas' base URLs (Self may be repeated; the
	// ring dedupes). The list is static: every replica and every client
	// must be configured with the same set for placement to agree.
	Peers []string
	// Server configures the embedded solver server. Its Cluster hooks are
	// overwritten by the node.
	Server server.Options
	// VirtualNodes overrides the ring's virtual-node count (0 keeps
	// DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the peer /healthz probe cadence (default 2s;
	// negative disables background probing).
	ProbeInterval time.Duration
	// PeerTimeout caps one peer cache-fill fetch (default 2s). Fills are
	// an optimization: better to solve locally than to wait on a slow
	// peer.
	PeerTimeout time.Duration
	// ClientOptions are forwarded to the per-peer HTTP clients used for
	// probing, peer cache fill, and drain handoff.
	ClientOptions []server.ClientOption
	// PeerSecret, when non-empty, authenticates the internal /v1/peer/*
	// endpoints: this replica refuses peer calls lacking the secret and
	// sends it on its own peer calls. Every replica must be configured
	// with the same value. Empty leaves the peer endpoints open, which is
	// acceptable only on a trusted network.
	PeerSecret string
	// BreakerConfig configures the per-peer circuit breakers (zero fields
	// keep the resilience defaults).
	BreakerConfig resilience.BreakerConfig
}

// Node is one replica of the solver cluster: an embedded server.Server
// whose cluster hooks resolve ownership on the shared ring, fill the
// result cache from owning peers, and stream hot entries to ring
// successors on drain.
type Node struct {
	srv     *server.Server
	ring    *Ring
	members *Membership
	reg     *resilience.BreakerRegistry
	peers   map[string]*server.Client
	self    string

	peerTimeout time.Duration
}

// NewNode builds a cluster replica and starts its health probing.
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: missing self URL")
	}
	ring := NewRing(append([]string{opts.Self}, opts.Peers...), opts.VirtualNodes)
	n := &Node{
		ring:        ring,
		reg:         resilience.NewBreakerRegistry(opts.BreakerConfig),
		peers:       make(map[string]*server.Client),
		self:        opts.Self,
		peerTimeout: opts.PeerTimeout,
	}
	if n.peerTimeout <= 0 {
		n.peerTimeout = 2 * time.Second
	}
	var peerURLs []string
	for _, u := range ring.Nodes() {
		if u == opts.Self {
			continue
		}
		peerURLs = append(peerURLs, u)
		perPeer := append(append([]server.ClientOption(nil), opts.ClientOptions...),
			server.WithSharedBreaker(n.reg.For(u)))
		if opts.PeerSecret != "" {
			perPeer = append(perPeer, server.WithPeerSecret(opts.PeerSecret))
		}
		n.peers[u] = server.NewClient(u, perPeer...)
	}

	interval := opts.ProbeInterval
	var probe ProbeFunc
	if interval >= 0 && len(peerURLs) > 0 {
		probe = func(ctx context.Context, url string) error {
			return n.peers[url].Health(ctx)
		}
	}
	n.members = NewMembership(peerURLs, probe, interval)

	srvOpts := opts.Server
	srvOpts.Cluster = &server.ClusterHooks{
		Self:        opts.Self,
		Secret:      opts.PeerSecret,
		Owner:       n.owner,
		FetchResult: n.fetchResult,
		Handoff:     n.handoff,
		PeerStates:  n.reg.States,
	}
	n.srv = server.New(srvOpts)
	if probe != nil {
		n.members.Start()
	}
	return n, nil
}

// Server returns the embedded solver server (metrics, tests).
func (n *Node) Server() *server.Server { return n.srv }

// Ring returns the placement ring shared by every replica and client.
func (n *Node) Ring() *Ring { return n.ring }

// Handler returns the replica's route table (solver endpoints plus the
// internal peer endpoints).
func (n *Node) Handler() http.Handler { return n.srv.Handler() }

// Shutdown drains the replica: the embedded server hands its hottest
// cache entries to ring successors and drains its pool, then health
// probing stops.
func (n *Node) Shutdown(ctx context.Context) error {
	err := n.srv.Shutdown(ctx)
	n.members.Stop()
	return err
}

// owner implements the server's ownership hook.
func (n *Node) owner(specHash string) (string, bool) {
	u := n.ring.Owner(specHash)
	return u, u == n.self || u == ""
}

// fetchResult implements peer cache fill: ask the owner's result cache
// for the key, bounded by the peer timeout. Any failure is a miss — the
// caller solves locally, which is always correct.
func (n *Node) fetchResult(ctx context.Context, ownerURL, key string) (*server.SolveResponse, bool) {
	cl, ok := n.peers[ownerURL]
	if !ok {
		return nil, false
	}
	if !n.members.Alive(ownerURL) {
		// A dead owner cannot answer; skip the round-trip and its breaker
		// noise. The next probe (or a handoff) will restore it.
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, n.peerTimeout)
	defer cancel()
	resp, found, err := cl.PeerResult(ctx, key)
	if err != nil || !found {
		return nil, false
	}
	return resp, true
}

// handoff implements drain handoff: each entry is routed to the first
// live ring successor of its model hash (excluding this replica), grouped
// into one push per destination. Returns how many entries peers accepted.
func (n *Node) handoff(ctx context.Context, entries []server.HandoffEntry) int {
	byDest := make(map[string][]server.HandoffEntry)
	for _, e := range entries {
		dest := n.handoffDest(e.SpecHash)
		if dest == "" {
			continue
		}
		byDest[dest] = append(byDest[dest], e)
	}
	accepted := 0
	for dest, group := range byDest {
		got, err := n.peers[dest].PushHandoff(ctx, group)
		if err != nil {
			continue // best effort: the successor will recompute on demand
		}
		accepted += got
	}
	return accepted
}

// handoffDest picks the first live replica (other than self) in ring
// order from a key's owner.
func (n *Node) handoffDest(specHash string) string {
	for _, u := range n.ring.Successors(specHash, len(n.peers)+1) {
		if u == n.self {
			continue
		}
		if n.members.Alive(u) {
			return u
		}
	}
	return ""
}
