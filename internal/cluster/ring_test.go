package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys generates count deterministic spec-hash-shaped keys.
func ringKeys(count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, count)
	for i := range keys {
		var buf [16]byte
		rng.Read(buf[:])
		sum := sha256.Sum256(buf[:])
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

// TestRingDeterministicPlacement pins the placement of fixed keys on a
// fixed node set. If this test fails, the ring hash (or the vnode label
// scheme) changed — which silently reshuffles every deployed cluster's
// shards across a rolling restart. Do not update the literals without
// treating that as a breaking operational change.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"http://replica-a:8639", "http://replica-b:8639", "http://replica-c:8639"}
	r := NewRing(nodes, 0)
	pinned := []struct{ key, owner string }{
		{"10c3e9011a1a8a26f9dc8b98f2b7cb43823f0f3c35bf04a4cb245f63462c6b37", "http://replica-a:8639"},
		{"574b0940bd8b50055bcc8b77a58b6b4b1c4996b6a86a6ae25b7321becbd2b4a8", "http://replica-c:8639"},
		{"b41952840a3a9e73423c2ae06c1e395f9f09ef618c95bb35975fb93c96173d38", "http://replica-a:8639"},
		{"c53e1f45807c05ff713f28dbedfdee4c5bd2f4bc0abf2a4c9e18966ad1b1e29f", "http://replica-b:8639"},
		{"f3662f3a38cd47a3c2b23f4aae9b805e9b0f972b35af18a95c0b09a7a425b0ef", "http://replica-c:8639"},
	}
	for _, p := range pinned {
		if got := r.Owner(p.key); got != p.owner {
			t.Errorf("Owner(%s…) = %q, want %q (ring hashing changed!)", p.key[:12], got, p.owner)
		}
	}
	// A freshly built ring (a "restarted process") must agree, and node
	// list order must not matter.
	shuffled := []string{nodes[2], nodes[0], nodes[1]}
	r2 := NewRing(shuffled, 0)
	for _, k := range ringKeys(200, 7) {
		if r.Owner(k) != r2.Owner(k) {
			t.Fatalf("placement depends on node list order for key %s…", k[:12])
		}
	}
}

// TestRingSuccessorsDistinctAndOwnerFirst checks the failover walk: the
// owner leads, every entry is a distinct node, and the walk covers the
// whole cluster.
func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(nodes, 64)
	for _, k := range ringKeys(100, 11) {
		succ := r.Successors(k, len(nodes))
		if len(succ) != len(nodes) {
			t.Fatalf("Successors returned %d nodes, want %d", len(succ), len(nodes))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("Successors[0] = %q, Owner = %q", succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, u := range succ {
			if seen[u] {
				t.Fatalf("duplicate node %q in successor walk", u)
			}
			seen[u] = true
		}
	}
	// Over-asking caps at the node count; an empty ring yields nothing.
	if got := r.Successors("aa", 99); len(got) != len(nodes) {
		t.Errorf("Successors(99) returned %d nodes, want %d", len(got), len(nodes))
	}
	if NewRing(nil, 0).Owner("aa") != "" {
		t.Error("empty ring must own nothing")
	}
}

// TestRingRemapFraction is the consistent-hashing property: removing one
// node moves only the keys it owned (expected share 1/n, asserted
// < 2/n), and every key it did not own keeps its owner exactly. Adding a
// node is checked symmetrically: changed keys all move to the newcomer.
func TestRingRemapFraction(t *testing.T) {
	keys := ringKeys(4000, 3)
	for _, n := range []int{3, 4, 6, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://replica-%d:8639", i)
		}
		full := NewRing(nodes, 0)

		// Remove the first node.
		reduced := NewRing(nodes[1:], 0)
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), reduced.Owner(k)
			if before == nodes[0] {
				if after == nodes[0] {
					t.Fatalf("n=%d: removed node still owns key %s…", n, k[:12])
				}
				moved++
			} else if after != before {
				t.Fatalf("n=%d: key %s… moved %q -> %q though its owner survived",
					n, k[:12], before, after)
			}
		}
		if frac, limit := float64(moved)/float64(len(keys)), 2.0/float64(n); frac >= limit {
			t.Errorf("n=%d: removal remapped %.3f of keys, want < %.3f", n, frac, limit)
		}

		// Add a new node.
		grown := NewRing(append([]string{"http://replica-new:8639"}, nodes...), 0)
		stolen := 0
		for _, k := range keys {
			before, after := full.Owner(k), grown.Owner(k)
			if after == before {
				continue
			}
			if after != "http://replica-new:8639" {
				t.Fatalf("n=%d: key %s… moved %q -> %q on an unrelated add",
					n, k[:12], before, after)
			}
			stolen++
		}
		if frac, limit := float64(stolen)/float64(len(keys)), 2.0/float64(n+1); frac >= limit {
			t.Errorf("n=%d: addition remapped %.3f of keys, want < %.3f", n, frac, limit)
		}
	}
}

// TestRingBalance sanity-checks shard sizes with the default vnode count:
// no replica should own more than twice its fair share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	keys := ringKeys(5000, 17)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(nodes))
	for _, u := range nodes {
		if c := counts[u]; float64(c) > 2*fair || float64(c) < fair/3 {
			t.Errorf("node %s owns %d of %d keys (fair share %.0f): ring badly unbalanced",
				u, c, len(keys), fair)
		}
	}
}
