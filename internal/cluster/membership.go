package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// ProbeFunc checks one peer's liveness; nil error means alive. The
// cluster wires this to the peer's GET /healthz (a draining replica
// answers 503 there, so drains read as "down" and traffic routes around
// them while their in-flight work finishes).
type ProbeFunc func(ctx context.Context, url string) error

// Membership tracks replica liveness for a static peer list. Peers start
// alive (optimistic, so the cluster routes before the first probe round)
// and are flipped by periodic health probes; callers may also mark a peer
// down directly on a transport-level failure for faster rerouting — the
// next successful probe restores it.
type Membership struct {
	mu    sync.Mutex
	alive map[string]bool
	// gen counts direct observations (MarkDown/MarkAlive) per peer. A
	// probe snapshots it before its round-trip and discards its outcome if
	// the count moved while it was in flight: the direct observation is
	// fresher, and a slow successful probe must not resurrect a peer that
	// a request just found dead (or vice versa).
	gen map[string]uint64

	probe    ProbeFunc
	interval time.Duration
	timeout  time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewMembership builds a table over peers. probe may be nil (liveness
// then changes only through MarkDown/MarkAlive); interval 0 selects 2s.
func NewMembership(peers []string, probe ProbeFunc, interval time.Duration) *Membership {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	m := &Membership{
		alive:    make(map[string]bool, len(peers)),
		gen:      make(map[string]uint64, len(peers)),
		probe:    probe,
		interval: interval,
		timeout:  interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range peers {
		if p != "" {
			m.alive[p] = true
		}
	}
	return m
}

// Start launches the background probe loop; it is a no-op without a probe
// function or when already started. Pair with Stop.
func (m *Membership) Start() {
	m.startOnce.Do(func() {
		if m.probe == nil {
			close(m.done)
			return
		}
		go m.loop()
	})
}

// Stop terminates the probe loop and waits for it to exit.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.Start() // ensure done is closed even if Start was never called
	<-m.done
}

func (m *Membership) loop() {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	m.probeAll()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.probeAll()
		}
	}
}

// probeAll probes every peer concurrently under one deadline.
func (m *Membership) probeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range m.Peers() {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			m.mu.Lock()
			start := m.gen[p]
			m.mu.Unlock()
			err := m.probe(ctx, p)
			m.mu.Lock()
			if m.gen[p] == start {
				m.alive[p] = err == nil
			}
			m.mu.Unlock()
		}(p)
	}
	wg.Wait()
}

// Alive reports whether peer is currently believed live. Unknown peers
// are dead.
func (m *Membership) Alive(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive[peer]
}

// MarkDown records a peer as dead (called on transport-level failures so
// routing reacts before the next probe round).
func (m *Membership) MarkDown(peer string) {
	m.mu.Lock()
	if _, known := m.alive[peer]; known {
		m.alive[peer] = false
		m.gen[peer]++
	}
	m.mu.Unlock()
}

// MarkAlive records a peer as live (called on any successful exchange).
func (m *Membership) MarkAlive(peer string) {
	m.mu.Lock()
	if _, known := m.alive[peer]; known {
		m.alive[peer] = true
		m.gen[peer]++
	}
	m.mu.Unlock()
}

// Peers returns every known peer in sorted order, dead or alive.
func (m *Membership) Peers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	peers := make([]string, 0, len(m.alive))
	for p := range m.alive {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	return peers
}

// AliveCount returns how many peers are currently believed live.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ok := range m.alive {
		if ok {
			n++
		}
	}
	return n
}
