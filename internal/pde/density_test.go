package pde

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/brownian"
	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

func buildModel(t *testing.T, a, b float64, r, s []float64) *core.Model {
	t.Helper()
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, r, s, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSolveDensityNormalModel(t *testing.T) {
	// Equal (r, sigma2) in both states: the density is exactly normal.
	m := buildModel(t, 3, 3, []float64{2, 2}, []float64{1.5, 1.5})
	const tt = 0.5
	sol, err := SolveDensity(m, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 1.0, 1.8} {
		got, err := sol.DensityAt(0, x)
		if err != nil {
			t.Fatal(err)
		}
		want := brownian.NormalPDF(x, 2*tt, 1.5*tt)
		if math.Abs(got-want) > 0.02*(1+want) {
			t.Errorf("x=%g: pde %g vs exact %g", x, got, want)
		}
	}
	mass, err := sol.TotalMass(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mass-1) > 0.01 {
		t.Errorf("total mass = %g", mass)
	}
	mean, err := sol.Mean(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2*tt) > 0.02 {
		t.Errorf("pde mean = %g, want %g", mean, 2*tt)
	}
}

func TestSolveDensityMatchesMomentSolver(t *testing.T) {
	m := buildModel(t, 2, 4, []float64{3, -1}, []float64{0.8, 1.4})
	const tt = 0.7
	sol, err := SolveDensity(m, tt, &Options{GridPoints: 1201})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AccumulatedReward(tt, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		mass, err := sol.TotalMass(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mass-1) > 0.02 {
			t.Errorf("state %d mass = %g", i, mass)
		}
		mean, err := sol.Mean(i)
		if err != nil {
			t.Fatal(err)
		}
		want := res.VectorMoments[1][i]
		if math.Abs(mean-want) > 0.03*(1+math.Abs(want)) {
			t.Errorf("state %d mean: pde %g vs moments %g", i, mean, want)
		}
	}
}

func TestSolveDensityArgumentErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{1, 1})
	if _, err := SolveDensity(nil, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil model: %v", err)
	}
	if _, err := SolveDensity(m, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0: %v", err)
	}
	if _, err := SolveDensity(m, -1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative t: %v", err)
	}
	if _, err := SolveDensity(m, 1, &Options{GridPoints: 3}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("tiny grid: %v", err)
	}
	if _, err := SolveDensity(m, 1, &Options{WarmupFraction: 1.5}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("warmup >= 1: %v", err)
	}
	if _, err := SolveDensity(m, 1, &Options{XMin: 1, XMax: -1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("inverted domain: %v", err)
	}

	zeroVar := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 1})
	if _, err := SolveDensity(zeroVar, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero variance: %v", err)
	}

	b := sparse.NewBuilder(2, 2)
	if err := b.Add(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	mi, err := m.WithImpulses(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveDensity(mi, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("impulses: %v", err)
	}
}

func TestSolutionAccessors(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{1, 1}, []float64{1, 1})
	sol, err := SolveDensity(m, 0.4, &Options{GridPoints: 301})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range state indices.
	if _, err := sol.DensityAt(5, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("DensityAt bad state: %v", err)
	}
	if _, err := sol.CDFAt(-1, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("CDFAt bad state: %v", err)
	}
	if _, err := sol.TotalMass(9); !errors.Is(err, ErrBadArgument) {
		t.Errorf("TotalMass bad state: %v", err)
	}
	if _, err := sol.Mean(9); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Mean bad state: %v", err)
	}
	// Outside the grid.
	if d, err := sol.DensityAt(0, sol.X[0]-10); err != nil || d != 0 {
		t.Errorf("density outside grid: %g %v", d, err)
	}
	if c, err := sol.CDFAt(0, sol.X[0]-10); err != nil || c != 0 {
		t.Errorf("cdf below grid: %g %v", c, err)
	}
	if c, err := sol.CDFAt(0, sol.X[len(sol.X)-1]+10); err != nil || math.Abs(c-1) > 0.02 {
		t.Errorf("cdf above grid: %g %v", c, err)
	}
	// CDF monotone.
	prev := -1.0
	for _, x := range []float64{-1, 0, 0.3, 0.6, 1.2} {
		c, err := sol.CDFAt(0, x)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev-1e-9 {
			t.Errorf("CDF decreasing at %g", x)
		}
		prev = c
	}
}

func TestAggregate(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{1, 1}, []float64{1, 1})
	sol, err := SolveDensity(m, 0.4, &Options{GridPoints: 201})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sol.Aggregate([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != len(sol.X) {
		t.Fatalf("aggregate length %d", len(agg))
	}
	if _, err := sol.Aggregate([]float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad weights length: %v", err)
	}
	if _, err := sol.Aggregate([]float64{-1, 2}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative weight: %v", err)
	}
}

func TestCDFAgainstTransformInversion(t *testing.T) {
	// Cross-validate the PDE CDF against the Gil-Pelaez route on an
	// asymmetric model.
	m := buildModel(t, 2, 4, []float64{3, -1}, []float64{0.8, 1.4})
	const tt = 0.5
	sol, err := SolveDensity(m, tt, &Options{GridPoints: 1001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AccumulatedReward(tt, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := res.VectorMoments[1][0]
	sd := math.Sqrt(res.VectorMoments[2][0] - mean*mean)
	for _, x := range []float64{mean - sd, mean, mean + sd} {
		c, err := sol.CDFAt(0, x)
		if err != nil {
			t.Fatal(err)
		}
		if c < 0.01 || c > 0.99 {
			t.Errorf("CDF at mean+/-sd should be interior, got %g at %g", c, x)
		}
	}
}
