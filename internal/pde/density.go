// Package pde solves the partial differential equation (4) of the paper
// for the density of the accumulated reward,
//
//	d/dt b(t,x) + R d/dx b(t,x) - 1/2 S d^2/dx^2 b(t,x) = Q b(t,x),
//
// with the method of lines: upwind differencing for the advection term,
// central differencing for the diffusion term, and RK4 time stepping under
// a CFL-limited step. As the paper notes, this route is viable only for
// small models (it is used here for distribution cross-checks on models
// with tens of states, against the moment-bound and transform methods).
package pde

import (
	"errors"
	"fmt"
	"math"

	"somrm/internal/brownian"
	"somrm/internal/core"
	"somrm/internal/odesolver"
)

// ErrBadArgument is returned for invalid solver arguments.
var ErrBadArgument = errors.New("pde: invalid argument")

// Options configures the density solver.
type Options struct {
	// XMin, XMax bound the truncated reward domain. When both are zero the
	// domain is chosen automatically as mean +/- 10 standard deviations
	// from a quick moment solve.
	XMin, XMax float64
	// GridPoints is the number of spatial grid points (default 801).
	GridPoints int
	// WarmupFraction is the fraction of t integrated analytically (frozen
	// state, exact normal kernel) to regularize the Dirac initial
	// condition; default 0.01.
	WarmupFraction float64
	// Safety scales the CFL time step (default 0.8).
	Safety float64
}

// Solution is the density of B(t) on a spatial grid, per initial state.
type Solution struct {
	// X is the grid; Density[i][j] = b_i(t, X[j]).
	X       []float64
	Density [][]float64
	// Steps is the number of RK4 time steps taken.
	Steps int
}

// SolveDensity integrates eq. (4) to time t. Every state variance must be
// positive (a zero-variance state keeps a Dirac component that a grid
// method cannot represent; use the moment bounds or Gil-Pelaez CDF for
// those models).
func SolveDensity(m *core.Model, t float64, opts *Options) (*Solution, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadArgument)
	}
	if m.HasImpulses() {
		return nil, fmt.Errorf("%w: impulse rewards not supported by the PDE solver", ErrBadArgument)
	}
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: time %g", ErrBadArgument, t)
	}
	vars := m.Variances()
	for i, v := range vars {
		if v <= 0 {
			return nil, fmt.Errorf("%w: state %d has sigma^2=%g; PDE solver needs positive variances", ErrBadArgument, i, v)
		}
	}
	cfg := Options{GridPoints: 801, WarmupFraction: 0.01, Safety: 0.8}
	if opts != nil {
		if opts.GridPoints != 0 {
			cfg.GridPoints = opts.GridPoints
		}
		if opts.WarmupFraction != 0 {
			cfg.WarmupFraction = opts.WarmupFraction
		}
		if opts.Safety != 0 {
			cfg.Safety = opts.Safety
		}
		cfg.XMin, cfg.XMax = opts.XMin, opts.XMax
	}
	if cfg.GridPoints < 10 {
		return nil, fmt.Errorf("%w: grid of %d points", ErrBadArgument, cfg.GridPoints)
	}
	if cfg.WarmupFraction <= 0 || cfg.WarmupFraction >= 1 {
		return nil, fmt.Errorf("%w: warmup fraction %g", ErrBadArgument, cfg.WarmupFraction)
	}

	if cfg.XMin == 0 && cfg.XMax == 0 {
		lo, hi, err := autoDomain(m, t)
		if err != nil {
			return nil, err
		}
		cfg.XMin, cfg.XMax = lo, hi
	}
	if cfg.XMax <= cfg.XMin {
		return nil, fmt.Errorf("%w: domain [%g, %g]", ErrBadArgument, cfg.XMin, cfg.XMax)
	}

	n := m.N()
	mpts := cfg.GridPoints
	dx := (cfg.XMax - cfg.XMin) / float64(mpts-1)
	x := make([]float64, mpts)
	for j := range x {
		x[j] = cfg.XMin + float64(j)*dx
	}
	rates := m.Rates()
	qDense := m.Generator().Matrix().Dense()

	// Warmup: exact frozen-state normal kernels at t0 (transitions in
	// (0, t0) are an O(q*t0) error, controlled by WarmupFraction).
	t0 := cfg.WarmupFraction * t
	y := make([]float64, n*mpts)
	for i := 0; i < n; i++ {
		for j := 0; j < mpts; j++ {
			y[i*mpts+j] = brownian.NormalPDF(x[j], rates[i]*t0, vars[i]*t0)
		}
	}

	// Method of lines: db_i/dt = -r_i D_x b_i + sigma_i^2/2 D_xx b_i + sum_k q_ik b_k.
	deriv := func(_ float64, state, dstate []float64) {
		for i := 0; i < n; i++ {
			bi := state[i*mpts : (i+1)*mpts]
			di := dstate[i*mpts : (i+1)*mpts]
			ri := rates[i]
			si := vars[i] / 2
			for j := 0; j < mpts; j++ {
				// Advection, upwinded by the sign of r_i.
				var adv float64
				switch {
				case ri > 0 && j >= 1:
					adv = ri * (bi[j] - bi[j-1]) / dx
				case ri < 0 && j+1 < mpts:
					adv = ri * (bi[j+1] - bi[j]) / dx
				}
				// Diffusion, central with homogeneous Dirichlet walls.
				var left, right float64
				if j >= 1 {
					left = bi[j-1]
				}
				if j+1 < mpts {
					right = bi[j+1]
				}
				diff := si * (left - 2*bi[j] + right) / (dx * dx)
				// Coupling through the generator.
				var coup float64
				for k := 0; k < n; k++ {
					if c := qDense[i*n+k]; c != 0 {
						coup += c * state[k*mpts+j]
					}
				}
				di[j] = -adv + diff + coup
			}
		}
	}

	// CFL-limited RK4 step.
	maxRate := 0.0
	for i := 0; i < n; i++ {
		c := math.Abs(rates[i])/dx + vars[i]/(dx*dx) + math.Abs(qDense[i*n+i])
		if c > maxRate {
			maxRate = c
		}
	}
	horizon := t - t0
	dt := cfg.Safety / maxRate
	steps := int(math.Ceil(horizon / dt))
	if steps < 1 {
		steps = 1
	}
	out, err := odesolver.RK4(deriv, y, 0, horizon, steps)
	if err != nil {
		return nil, fmt.Errorf("pde: %w", err)
	}

	sol := &Solution{X: x, Density: make([][]float64, n), Steps: steps}
	for i := 0; i < n; i++ {
		row := make([]float64, mpts)
		copy(row, out[i*mpts:(i+1)*mpts])
		for j, v := range row {
			if v < 0 {
				row[j] = 0 // clip upwind undershoot
			}
		}
		sol.Density[i] = row
	}
	return sol, nil
}

// autoDomain sizes the truncated domain from a quick second-moment solve:
// the widest per-state mean +/- 10 standard deviations.
func autoDomain(m *core.Model, t float64) (float64, float64, error) {
	res, err := m.AccumulatedReward(t, 2, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("pde: auto domain: %w", err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m.N(); i++ {
		mean := res.VectorMoments[1][i]
		v := res.VectorMoments[2][i] - mean*mean
		if v < 0 {
			v = 0
		}
		sd := math.Sqrt(v)
		if a := mean - 10*sd; a < lo {
			lo = a
		}
		if b := mean + 10*sd; b > hi {
			hi = b
		}
	}
	if !(hi > lo) {
		return 0, 0, fmt.Errorf("%w: degenerate auto domain [%g, %g]", ErrBadArgument, lo, hi)
	}
	// Pad a little for diffusion into the walls.
	pad := 0.05 * (hi - lo)
	return lo - pad, hi + pad, nil
}
