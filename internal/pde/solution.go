package pde

import (
	"fmt"
	"math"
)

// DensityAt linearly interpolates the density of initial state i at x.
// Outside the grid it returns 0.
func (s *Solution) DensityAt(i int, x float64) (float64, error) {
	if i < 0 || i >= len(s.Density) {
		return 0, fmt.Errorf("%w: state %d of %d", ErrBadArgument, i, len(s.Density))
	}
	n := len(s.X)
	if x <= s.X[0] || x >= s.X[n-1] {
		return 0, nil
	}
	dx := s.X[1] - s.X[0]
	j := int((x - s.X[0]) / dx)
	if j >= n-1 {
		j = n - 2
	}
	frac := (x - s.X[j]) / dx
	row := s.Density[i]
	return row[j]*(1-frac) + row[j+1]*frac, nil
}

// CDFAt integrates the density of initial state i up to x with the
// trapezoid rule.
func (s *Solution) CDFAt(i int, x float64) (float64, error) {
	if i < 0 || i >= len(s.Density) {
		return 0, fmt.Errorf("%w: state %d of %d", ErrBadArgument, i, len(s.Density))
	}
	n := len(s.X)
	if x <= s.X[0] {
		return 0, nil
	}
	dx := s.X[1] - s.X[0]
	row := s.Density[i]
	var acc float64
	for j := 0; j+1 < n && s.X[j+1] <= x; j++ {
		acc += dx / 2 * (row[j] + row[j+1])
	}
	// Partial final cell: X[j] <= x < X[j+1].
	j := int((x - s.X[0]) / dx)
	if j >= 0 && j+1 < n && s.X[j] < x {
		end, _ := s.DensityAt(i, x)
		acc += (x - s.X[j]) / 2 * (row[j] + end)
	}
	if acc > 1 {
		acc = 1
	}
	return acc, nil
}

// TotalMass returns the integral of the density for initial state i; a
// value close to 1 indicates the truncated domain captured the
// distribution.
func (s *Solution) TotalMass(i int) (float64, error) {
	if i < 0 || i >= len(s.Density) {
		return 0, fmt.Errorf("%w: state %d of %d", ErrBadArgument, i, len(s.Density))
	}
	dx := s.X[1] - s.X[0]
	row := s.Density[i]
	var acc float64
	for j := 0; j+1 < len(row); j++ {
		acc += dx / 2 * (row[j] + row[j+1])
	}
	return acc, nil
}

// Mean returns the mean of the density for initial state i (a consistency
// check against the moment solver).
func (s *Solution) Mean(i int) (float64, error) {
	if i < 0 || i >= len(s.Density) {
		return 0, fmt.Errorf("%w: state %d of %d", ErrBadArgument, i, len(s.Density))
	}
	dx := s.X[1] - s.X[0]
	row := s.Density[i]
	var acc float64
	for j := 0; j+1 < len(row); j++ {
		acc += dx / 2 * (row[j]*s.X[j] + row[j+1]*s.X[j+1])
	}
	return acc, nil
}

// Aggregate returns the initial-distribution-weighted density over the
// grid: sum_i pi_i b_i(t, x_j).
func (s *Solution) Aggregate(pi []float64) ([]float64, error) {
	if len(pi) != len(s.Density) {
		return nil, fmt.Errorf("%w: %d weights for %d states", ErrBadArgument, len(pi), len(s.Density))
	}
	out := make([]float64, len(s.X))
	for i, p := range pi {
		if p == 0 {
			continue
		}
		if math.IsNaN(p) || p < 0 {
			return nil, fmt.Errorf("%w: weight pi[%d]=%g", ErrBadArgument, i, p)
		}
		for j, v := range s.Density[i] {
			out[j] += p * v
		}
	}
	return out, nil
}
