package sparse

import (
	"math/rand"
	"testing"
)

// Ablation (DESIGN.md): sparse CSR vs dense mat-vec in the randomization
// loop. The tridiagonal ON-OFF generator has 3 nonzeros per row, so CSR
// should win by ~n/3 flops per product.
func benchmarkTridiagonal(n int) (*CSR, []float64, []float64) {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			_ = b.Add(i, i-1, 1.5)
		}
		_ = b.Add(i, i, -3)
		if i < n-1 {
			_ = b.Add(i, i+1, 1.5)
		}
	}
	x := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.Float64()
	}
	return b.Build(), x, y
}

func BenchmarkCSRMatVecTridiagonal(b *testing.B) {
	m, x, y := benchmarkTridiagonal(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseMatVecTridiagonal(b *testing.B) {
	const n = 2_000 // dense n=10k would be 800 MB; compare per-op at 2k
	m, x, _ := benchmarkTridiagonal(n)
	dense := m.Dense()
	y := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < n; r++ {
			var sum float64
			row := dense[r*n : (r+1)*n]
			for c, v := range row {
				sum += v * x[c]
			}
			y[r] = sum
		}
	}
}

func BenchmarkCSRMatVecAt2k(b *testing.B) {
	m, x, y := benchmarkTridiagonal(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuilderBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _, _ := benchmarkTridiagonal(5_000)
		if m.NNZ() == 0 {
			b.Fatal("empty build")
		}
	}
}
