// Package sparse implements the compressed sparse row (CSR) matrices used in
// the randomization loop of the second-order Markov reward model solver. The
// paper's large example (200,001 states, tridiagonal generator) is only
// tractable with a sparse representation; the iteration cost is
// (m+2) vector-vector multiplications where m is the mean number of
// non-zeros per row.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDimensionMismatch is returned when operand sizes are incompatible.
var ErrDimensionMismatch = errors.New("sparse: dimension mismatch")

// ErrBadTriplet is returned when a COO triplet lies outside the matrix.
var ErrBadTriplet = errors.New("sparse: triplet index out of range")

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []float64

	// dv caches derived representations (bandwidth, compact 32-bit column
	// indexes, the band form) built lazily from the immutable structure.
	dv deriv
}

// Triplet is a single (row, col, value) entry used to build a CSR matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Builder accumulates COO triplets and converts them to CSR. Duplicate
// (row, col) entries are summed, matching the usual sparse-assembly
// convention.
type Builder struct {
	rows, cols int
	entries    []Triplet
}

// NewBuilder returns a builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add records value v at (i, j). Zero values are kept out of the structure.
func (b *Builder) Add(i, j int, v float64) error {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		return fmt.Errorf("%w: (%d,%d) in %dx%d", ErrBadTriplet, i, j, b.rows, b.cols)
	}
	if v == 0 {
		return nil
	}
	b.entries = append(b.entries, Triplet{Row: i, Col: j, Val: v})
	return nil
}

// Build converts the accumulated triplets to a CSR matrix. The builder can
// be reused afterwards; Build does not clear it.
func (b *Builder) Build() *CSR {
	ents := append([]Triplet(nil), b.entries...)
	// Stable: duplicate (row, col) triplets are summed in Add order, so a
	// rebuilt matrix is bitwise identical regardless of sort internals.
	sort.SliceStable(ents, func(x, y int) bool {
		if ents[x].Row != ents[y].Row {
			return ents[x].Row < ents[y].Row
		}
		return ents[x].Col < ents[y].Col
	})
	m := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int, b.rows+1),
	}
	// Merge duplicates.
	for k := 0; k < len(ents); {
		row, col, sum := ents[k].Row, ents[k].Col, 0.0
		for ; k < len(ents) && ents[k].Row == row && ents[k].Col == col; k++ {
			sum += ents[k].Val
		}
		if sum != 0 {
			m.colIdx = append(m.colIdx, col)
			m.val = append(m.val, sum)
			m.rowPtr[row+1]++
		}
	}
	for i := 0; i < b.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// NewCSRFromDense builds a CSR matrix from a row-major dense slice layout.
func NewCSRFromDense(rows, cols int, data []float64) (*CSR, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d values for %dx%d", ErrDimensionMismatch, len(data), rows, cols)
	}
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; v != 0 {
				if err := b.Add(i, j, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns element (i, j) with a binary search over the row. It is meant
// for tests and assembly checks, not hot loops.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// Range calls fn for every stored entry of row i.
func (m *CSR) Range(i int, fn func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// MatVec computes y = m*x, storing into y (which must have length Rows and
// is overwritten). x and y must not alias.
func (m *CSR) MatVec(x, y []float64) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("%w: matvec %dx%d with x=%d y=%d", ErrDimensionMismatch, m.rows, m.cols, len(x), len(y))
	}
	for i := 0; i < m.rows; i++ {
		var sum float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			sum += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = sum
	}
	return nil
}

// MatVecAdd computes y += a * (m*x). x and y must not alias.
func (m *CSR) MatVecAdd(a float64, x, y []float64) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("%w: matvecadd %dx%d with x=%d y=%d", ErrDimensionMismatch, m.rows, m.cols, len(x), len(y))
	}
	if a == 0 {
		return nil
	}
	for i := 0; i < m.rows; i++ {
		var sum float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			sum += m.val[k] * x[m.colIdx[k]]
		}
		y[i] += a * sum
	}
	return nil
}

// VecMat computes y = xᵀ*m as a length-Cols vector.
func (m *CSR) VecMat(x, y []float64) error {
	if len(x) != m.rows || len(y) != m.cols {
		return fmt.Errorf("%w: vecmat %dx%d with x=%d y=%d", ErrDimensionMismatch, m.rows, m.cols, len(x), len(y))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			y[m.colIdx[k]] += xi * m.val[k]
		}
	}
	return nil
}

// Scaled returns a new CSR equal to a*m.
func (m *CSR) Scaled(a float64) *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val)),
	}
	for i, v := range m.val {
		out.val[i] = a * v
	}
	return out
}

// AddDiagonal returns a new CSR equal to m + diag(d). d must have length
// Rows and the matrix must be square.
func (m *CSR) AddDiagonal(d []float64) (*CSR, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: add diagonal to %dx%d", ErrDimensionMismatch, m.rows, m.cols)
	}
	if len(d) != m.rows {
		return nil, fmt.Errorf("%w: diagonal of %d for %dx%d", ErrDimensionMismatch, len(d), m.rows, m.cols)
	}
	b := NewBuilder(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			_ = b.Add(i, m.colIdx[k], m.val[k])
		}
		_ = b.Add(i, i, d[i])
	}
	return b.Build(), nil
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	sums := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		sums[i] = s
	}
	return sums
}

// IsSubstochastic reports whether all entries are non-negative and all row
// sums are at most 1+tol. These are the two properties the randomization
// method relies on for numerical stability (section 6 of the paper).
func (m *CSR) IsSubstochastic(tol float64) bool {
	for _, v := range m.val {
		if v < 0 {
			return false
		}
	}
	for _, s := range m.RowSums() {
		if s > 1+tol {
			return false
		}
	}
	return true
}

// Dense expands m into a row-major dense slice (rows*cols), for tests and
// for handing small matrices to dense factorizations.
func (m *CSR) Dense() []float64 {
	out := make([]float64, m.rows*m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[i*m.cols+m.colIdx[k]] = m.val[k]
		}
	}
	return out
}
