package sparse

import "fmt"

// MatrixFormat selects the storage representation the randomization sweep
// streams for its main matrix. Every format produces bitwise identical
// results; the choice trades only memory traffic and conversion cost.
type MatrixFormat string

const (
	// FormatAuto picks the cheapest eligible representation: band for
	// narrow, nearly dense bands (the paper's birth-death generators),
	// otherwise compact-index CSR, otherwise the 64-bit-index CSR.
	FormatAuto MatrixFormat = "auto"
	// FormatCSR forces the compact-index CSR: uint32 column indexes
	// (halving index traffic) whenever the matrix has fewer than 2^32
	// columns, the 64-bit-index CSR otherwise.
	FormatCSR MatrixFormat = "csr"
	// FormatBand forces the band (diagonal-storage) representation, whose
	// kernel loads values only — no per-entry index loads. Matrices whose
	// band would be too wide or too padded fall back to FormatCSR; the
	// effective choice is visible via Sweep.Format.
	FormatBand MatrixFormat = "band"
	// FormatCSR64 forces the original CSR with native int column indexes.
	// It exists as the benchmarking baseline (the pre-compact kernel) and
	// as an escape hatch.
	FormatCSR64 MatrixFormat = "csr64"
	// FormatCSR32 is the resolved name of the compact-index CSR; it is
	// what Sweep.Format reports when FormatCSR (or FormatAuto) narrowed
	// the indexes. It is also accepted as an input alias for FormatCSR.
	FormatCSR32 MatrixFormat = "csr32"
)

// ParseMatrixFormat validates a user-facing matrix format string. The
// empty string means FormatAuto.
func ParseMatrixFormat(s string) (MatrixFormat, error) {
	switch f := MatrixFormat(s); f {
	case "":
		return FormatAuto, nil
	case FormatAuto, FormatCSR, FormatBand, FormatCSR64, FormatCSR32:
		return f, nil
	default:
		return "", fmt.Errorf("sparse: unknown matrix format %q (want auto, csr, band or csr64)", s)
	}
}

// resolveStorage picks the concrete storage for a sweep over matrix a:
// the resolved format (FormatBand, FormatCSR32 or FormatCSR64) plus the
// derived representation it streams. Derived representations are cached
// on the matrix, so repeated sweeps (core.Prepared) convert once.
func resolveStorage(a *CSR, format MatrixFormat) (MatrixFormat, *Band, []uint32, error) {
	compact := func() (MatrixFormat, *Band, []uint32, error) {
		if c32 := a.ColIdx32(); c32 != nil {
			return FormatCSR32, nil, c32, nil
		}
		return FormatCSR64, nil, nil, nil
	}
	switch format {
	case "", FormatAuto:
		if a.bandEligible(false) {
			return FormatBand, a.BandRep(), nil, nil
		}
		return compact()
	case FormatCSR, FormatCSR32:
		return compact()
	case FormatBand:
		if a.bandEligible(true) {
			return FormatBand, a.BandRep(), nil, nil
		}
		return compact()
	case FormatCSR64:
		return FormatCSR64, nil, nil, nil
	default:
		return "", nil, nil, fmt.Errorf("sparse: unknown matrix format %q", format)
	}
}
