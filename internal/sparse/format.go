package sparse

import "fmt"

// MatrixFormat selects the storage representation the randomization sweep
// streams for its main matrix. Every format produces bitwise identical
// results; the choice trades only memory traffic and conversion cost.
type MatrixFormat string

const (
	// FormatAuto picks the cheapest eligible representation: band for
	// narrow, nearly dense bands (the paper's birth-death generators),
	// then QBD for block-tridiagonal matrices whose band is too wide,
	// otherwise compact-index CSR, otherwise the 64-bit-index CSR.
	FormatAuto MatrixFormat = "auto"
	// FormatCSR forces the compact-index CSR: uint32 column indexes
	// (halving index traffic) whenever the matrix has fewer than 2^32
	// columns, the 64-bit-index CSR otherwise.
	FormatCSR MatrixFormat = "csr"
	// FormatBand forces the band (diagonal-storage) representation, whose
	// kernel loads values only — no per-entry index loads. Matrices whose
	// band would be too wide or too padded fall back to FormatCSR; the
	// effective choice is visible via Sweep.Format.
	FormatBand MatrixFormat = "band"
	// FormatCSR64 forces the original CSR with native int column indexes.
	// It exists as the benchmarking baseline (the pre-compact kernel) and
	// as an escape hatch.
	FormatCSR64 MatrixFormat = "csr64"
	// FormatCSR32 is the resolved name of the compact-index CSR; it is
	// what Sweep.Format reports when FormatCSR (or FormatAuto) narrowed
	// the indexes. It is also accepted as an input alias for FormatCSR.
	FormatCSR32 MatrixFormat = "csr32"
	// FormatQBD forces the block-tridiagonal (quasi-birth-death) window
	// representation: dense 3b-cell rows addressed by level, value-only
	// traffic like band but for block-local coupling. Matrices with no
	// valid (or no affordable) block size fall back to FormatCSR.
	FormatQBD MatrixFormat = "qbd"
	// FormatKron is the matrix-free Kronecker-sum operator of composed
	// models: the sweep streams the product-space generator directly from
	// the factor matrices, never materializing the product CSR. It cannot
	// be forced onto an explicit matrix — as a requested format it means
	// "use the matrix-free operator when the model carries one" and
	// resolves like auto otherwise; it is what Sweep.Format reports for
	// operator-backed sweeps.
	FormatKron MatrixFormat = "kron"
)

// ParseMatrixFormat validates a user-facing matrix format string. The
// empty string means FormatAuto.
func ParseMatrixFormat(s string) (MatrixFormat, error) {
	switch f := MatrixFormat(s); f {
	case "":
		return FormatAuto, nil
	case FormatAuto, FormatCSR, FormatBand, FormatCSR64, FormatCSR32, FormatQBD, FormatKron:
		return f, nil
	default:
		return "", fmt.Errorf("sparse: unknown matrix format %q (want auto, csr, band, qbd, kron or csr64)", s)
	}
}

// resolveStorage picks the concrete storage for a sweep over an explicit
// matrix a: the resolved format (FormatBand, FormatQBD, FormatCSR32 or
// FormatCSR64) plus the derived representation it streams. Derived
// representations are cached on the matrix, so repeated sweeps
// (core.Prepared) convert once.
func resolveStorage(a *CSR, format MatrixFormat) (MatrixFormat, *Band, []uint32, *QBD, error) {
	compact := func() (MatrixFormat, *Band, []uint32, *QBD, error) {
		if c32 := a.ColIdx32(); c32 != nil {
			return FormatCSR32, nil, c32, nil, nil
		}
		return FormatCSR64, nil, nil, nil, nil
	}
	switch format {
	case "", FormatAuto, FormatKron:
		// FormatKron on an explicit matrix means the model had no
		// matrix-free operator to stream; fall through to auto.
		if a.bandEligible(false) {
			return FormatBand, a.BandRep(), nil, nil, nil
		}
		if a.qbdEligible(false) {
			return FormatQBD, nil, nil, a.QBDRep(), nil
		}
		return compact()
	case FormatCSR, FormatCSR32:
		return compact()
	case FormatBand:
		if a.bandEligible(true) {
			return FormatBand, a.BandRep(), nil, nil, nil
		}
		return compact()
	case FormatQBD:
		if a.qbdEligible(true) {
			return FormatQBD, nil, nil, a.QBDRep(), nil
		}
		return compact()
	case FormatCSR64:
		return FormatCSR64, nil, nil, nil, nil
	default:
		return "", nil, nil, nil, fmt.Errorf("sparse: unknown matrix format %q", format)
	}
}
