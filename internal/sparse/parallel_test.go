package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMatVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 7, 100, 5000} {
		b := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			for k := 0; k < 4; k++ {
				_ = b.Add(i, rng.Intn(n), rng.NormFloat64())
			}
		}
		m := b.Build()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		serial := make([]float64, n)
		parallel := make([]float64, n)
		if err := m.MatVec(x, serial); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 7} {
			if err := m.MatVecParallel(x, parallel, workers); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range serial {
				if math.Abs(parallel[i]-serial[i]) > 1e-15*(1+math.Abs(serial[i])) {
					t.Fatalf("n=%d workers=%d row %d: %g vs %g", n, workers, i, parallel[i], serial[i])
				}
			}
		}
		if err := m.MatVecAuto(x, parallel); err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if parallel[i] != serial[i] && math.Abs(parallel[i]-serial[i]) > 1e-15 {
				t.Fatalf("auto mismatch at %d", i)
			}
		}
	}
}

func TestMatVecParallelDimensionErrors(t *testing.T) {
	m := buildKnown(t)
	if err := m.MatVecParallel(make([]float64, 2), make([]float64, 3), 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad x: %v", err)
	}
	if err := m.MatVecParallel(make([]float64, 3), make([]float64, 1), 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad y: %v", err)
	}
}

func TestMatVecParallelMoreWorkersThanRows(t *testing.T) {
	m := buildKnown(t)
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	if err := m.MatVecParallel(x, y, 64); err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 6, 32}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func BenchmarkCSRMatVecParallel100k(b *testing.B) {
	m, x, y := benchmarkTridiagonal(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatVecParallel(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRMatVecSerial100k(b *testing.B) {
	m, x, y := benchmarkTridiagonal(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
