package sparse

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func TestMatVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 7, 100, 5000} {
		b := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			for k := 0; k < 4; k++ {
				_ = b.Add(i, rng.Intn(n), rng.NormFloat64())
			}
		}
		m := b.Build()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		serial := make([]float64, n)
		parallel := make([]float64, n)
		if err := m.MatVec(x, serial); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 7} {
			if err := m.MatVecParallel(x, parallel, workers); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range serial {
				if math.Abs(parallel[i]-serial[i]) > 1e-15*(1+math.Abs(serial[i])) {
					t.Fatalf("n=%d workers=%d row %d: %g vs %g", n, workers, i, parallel[i], serial[i])
				}
			}
		}
		if err := m.MatVecAuto(x, parallel); err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if parallel[i] != serial[i] && math.Abs(parallel[i]-serial[i]) > 1e-15 {
				t.Fatalf("auto mismatch at %d", i)
			}
		}
	}
}

// TestWorkerSelectionUnified pins the shared worker-selection policy of
// MatVecParallel and MatVecAuto: workers <= 0 (automatic), workers == 1,
// and workers > rows must all agree with the serial MatVec bit for bit on
// a fixed seeded matrix, and the automatic path must match an explicit
// request on both sides of parallelThreshold.
func TestWorkerSelectionUnified(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, rows := range []int{1, 3, 257, parallelThreshold - 1, parallelThreshold, parallelThreshold + 1} {
		b := NewBuilder(rows, rows)
		for i := 0; i < rows; i++ {
			for k := 0; k < 3; k++ {
				_ = b.Add(i, rng.Intn(rows), rng.NormFloat64())
			}
		}
		m := b.Build()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		serial := make([]float64, rows)
		if err := m.MatVec(x, serial); err != nil {
			t.Fatal(err)
		}
		check := func(name string, f func(x, y []float64) error) {
			t.Helper()
			got := make([]float64, rows)
			if err := f(x, got); err != nil {
				t.Fatalf("rows=%d %s: %v", rows, name, err)
			}
			for i := range serial {
				if got[i] != serial[i] {
					t.Fatalf("rows=%d %s row %d: %g != serial %g (not bit-for-bit)",
						rows, name, i, got[i], serial[i])
				}
			}
		}
		check("workers=-1", func(x, y []float64) error { return m.MatVecParallel(x, y, -1) })
		check("workers=0", func(x, y []float64) error { return m.MatVecParallel(x, y, 0) })
		check("workers=1", func(x, y []float64) error { return m.MatVecParallel(x, y, 1) })
		check("workers=rows+7", func(x, y []float64) error { return m.MatVecParallel(x, y, rows+7) })
		check("auto", m.MatVecAuto)
	}
}

func TestWorkersForPolicy(t *testing.T) {
	big := parallelThreshold * 2
	cases := []struct {
		requested, rows, want int
	}{
		{0, parallelThreshold - 1, 1},   // auto below threshold: serial
		{-5, 10, 1},                     // any non-positive request is auto
		{0, big, runtime.GOMAXPROCS(0)}, // auto above threshold: all cores
		{3, 10, 3},                      // explicit requests are honored
		{3, parallelThreshold - 1, 3},   // ...even below the threshold
		{1, big, 1},                     // explicit serial
		{100, 10, 10},                   // never more workers than rows
		{0, parallelThreshold, minInt(runtime.GOMAXPROCS(0), parallelThreshold)},
	}
	for _, c := range cases {
		if got := workersFor(c.requested, c.rows); got != c.want {
			t.Errorf("workersFor(%d, %d) = %d, want %d", c.requested, c.rows, got, c.want)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMatVecParallelDimensionErrors(t *testing.T) {
	m := buildKnown(t)
	if err := m.MatVecParallel(make([]float64, 2), make([]float64, 3), 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad x: %v", err)
	}
	if err := m.MatVecParallel(make([]float64, 3), make([]float64, 1), 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad y: %v", err)
	}
}

func TestMatVecParallelMoreWorkersThanRows(t *testing.T) {
	m := buildKnown(t)
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	if err := m.MatVecParallel(x, y, 64); err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 6, 32}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func BenchmarkCSRMatVecParallel100k(b *testing.B) {
	m, x, y := benchmarkTridiagonal(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatVecParallel(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRMatVecSerial100k(b *testing.B) {
	m, x, y := benchmarkTridiagonal(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
