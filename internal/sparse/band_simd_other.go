//go:build !amd64

package sparse

// hasAVX2 is constant false off amd64, so the compiler removes the
// dispatch branches and the stubs below are never called.
const hasAVX2 = false

func bandTri3AVX2(n int, bval, cur, next, d1, d2 *float64) {
	panic("sparse: bandTri3AVX2 called without AVX2 support")
}

func bandTri3AccAVX2(n int, bval, cur, next, d1, d2, a0, a1, a2, a3 *float64, w float64) {
	panic("sparse: bandTri3AccAVX2 called without AVX2 support")
}
