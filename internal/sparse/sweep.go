package sparse

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// This file implements the randomization sweep engine: the k = 1..G
// recursion of Theorems 3-4,
//
//	next[j] = A·cur[j] + diag1·cur[j-1] + diag2·cur[j-2]
//	          + Σ_m coef[m]·imp[m-1]·cur[j-m]
//
// for j = 0..order, followed by the Poisson-weighted accumulation
// acc[j] += w_k·next[j] for every active time plan. The sweep dominates
// every large solve (the paper's N = 200,001 example runs G ≈ 41,588
// iterations of it), so instead of issuing order+1 independent
// matrix-vector products per iteration — each spawning and joining its own
// goroutine team, then re-streaming the vectors for the diagonal terms and
// again for every time plan's accumulation — the fused kernel makes a
// single pass over each CSR row block: all per-row work (products,
// diagonal terms, impulse terms, accumulations) happens while the row's
// slice of cur/next is hot in cache.
//
// The worker team is persistent: row ranges are partitioned once per
// solve, balanced by non-zero count rather than row count, and the same
// goroutines run every iteration, synchronizing on a lightweight
// channel barrier instead of being respawned G times.
//
// Per element, the fused kernel performs exactly the same floating-point
// operations in exactly the same order as the serial reference sweep
// (RunReference), so the two agree bit for bit for every worker count.
// The reference sweep is both the fallback for small matrices — below
// parallelThreshold rows the barrier cost cannot be amortized — and the
// oracle the regression tests compare against.

// SweepPlan describes one time point's Poisson accumulation during a
// sweep. Weight[k] is the Poisson probability of iteration k; only
// iterations k in [First, Last] accumulate — the effective window outside
// of which the pmf underflows to zero (for large qt the head of the
// distribution is exactly zero in float64, so clipping it skips the whole
// accumulation pass for those iterations). A plan with Last < First never
// accumulates (used for t = 0 entries of a time grid).
type SweepPlan struct {
	// First and Last bound the accumulating iterations (inclusive).
	First, Last int
	// Weight[k] is the Poisson pmf at k; len(Weight) must exceed Last.
	Weight []float64
	// Acc[j][i] accumulates Σ_k Weight[k]·U^(j)(k)[i] for j = 0..order.
	Acc [][]float64
}

// accPair is one resolved accumulation target for the current iteration.
type accPair struct {
	w   float64
	acc [][]float64
}

// Sweep is a prepared randomization sweep over a fixed matrix family:
// the uniformized generator a, the diagonal first- and second-order
// reward terms, and optional impulse matrices imp[m-1] applied with
// coefficient 1/m!. Build one per solve with NewSweep, then execute it
// with Run (fused, persistent worker team) or RunReference (serial
// oracle).
type Sweep struct {
	a            *CSR     // explicit sweep matrix; nil for operator-backed sweeps
	op           Operator // matrix-free sweep operator; nil when a is set
	rows         int
	diag1, diag2 []float64
	imp          []*CSR
	coef         []float64 // coef[m] = 1/m!, the impulse term coefficients
	order        int
	workers      int
	blocks       []int // blocks[w]..blocks[w+1] is worker w's row range

	// Tuning knobs (see SetSweepTile / SetTemporalBlock): tile is the
	// spatial row-tile width of the fused kernels and the block width of
	// the temporally blocked driver; tblock is the requested temporal
	// block depth (0 auto, 1 off, >= 2 forced); resolvedT records the
	// depth the last Run actually used (1 when it ran unblocked).
	tile      int
	tblock    int
	resolvedT int

	// wf carries the per-group wavefront state of the temporally blocked
	// parallel driver; nil for every other run shape.
	wf *wavefrontGroup

	// SIMD dispatch (see simd.go): nosimd is the per-sweep kill-switch
	// (SetNoSIMD), simd the resolved gate (hardware support minus the
	// kill-switches), kernel the label of the last run's dispatch.
	nosimd bool
	simd   bool
	kernel string

	// Resolved storage (see MatrixFormat): the kernels stream band values,
	// QBD windows or compact uint32 column indexes instead of the generic
	// CSR when the structure allows, cutting the memory traffic of this
	// bandwidth-bound loop; kron streams the matrix-free operator. All
	// formats are bitwise identical.
	format MatrixFormat
	band   *Band    // set when format == FormatBand
	col32  []uint32 // set when format == FormatCSR32
	qbd    *QBD     // set when format == FormatQBD
	kron   *KronSum // set when op is a Kronecker-sum operator

	// scratch4 is optional caller-lent backing for cur4/next4 (see
	// SetScratch4), letting pooled solves skip the two largest per-run
	// allocations.
	scratch4 []float64

	// onInterrupt, when set, is invoked at the iteration barrier where a
	// context cancellation is observed, before Run returns the context's
	// error (see SetInterruptHook). It is the seam checkpointable solves
	// hang their snapshot capture on.
	onInterrupt InterruptHook

	// Iteration state published by the driver before each barrier release;
	// the channel synchronization orders these writes before the workers'
	// reads. cur4/next4 replace cur/next when the run uses the interleaved
	// order-3 layout (see fuseBlock3).
	cur, next   [][]float64
	cur4, next4 []float64
	active      []accPair
}

// PlanWorkers resolves the sweep parallelism knob for a matrix with the
// given number of rows:
//
//   - requested > 0 forces the fused kernel with that many workers
//     (capped at rows), regardless of size;
//   - requested == 0 selects automatically: 0 — meaning the caller should
//     run the serial reference sweep — below parallelThreshold rows, and
//     a fused team of GOMAXPROCS workers at or above it;
//   - requested < 0 forces the reference sweep (returns 0).
//
// The returned count is 0 for "use RunReference" and >= 1 for "use Run
// with this team size". Every choice yields bitwise identical results.
func PlanWorkers(requested, rows int) int {
	if requested < 0 {
		return 0
	}
	if requested == 0 {
		if rows < parallelThreshold {
			return 0
		}
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > rows {
		requested = rows
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// NewSweep validates the matrix family and partitions the rows for a team
// of the given size. diag2 must already carry any constant factor (the
// solver passes ½·S'). imp may be empty; when present it must hold at
// least order matrices (imp[m-1] multiplies cur[j-m] for every m <= j).
// The sweep matrix's storage is selected automatically (FormatAuto); use
// NewSweepWithFormat to force a representation.
func NewSweep(a *CSR, diag1, diag2 []float64, imp []*CSR, order, workers int) (*Sweep, error) {
	return NewSweepWithFormat(a, diag1, diag2, imp, order, workers, FormatAuto)
}

// NewSweepWithFormat is NewSweep with an explicit storage format for the
// sweep matrix. Impulse matrices always stay generic CSR — they are rare
// and never dominate the traffic. Every format yields bitwise identical
// results; Format reports the resolved choice.
func NewSweepWithFormat(a *CSR, diag1, diag2 []float64, imp []*CSR, order, workers int, format MatrixFormat) (*Sweep, error) {
	if a == nil {
		return nil, fmt.Errorf("%w: nil sweep matrix", ErrDimensionMismatch)
	}
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: sweep matrix %dx%d not square", ErrDimensionMismatch, a.rows, a.cols)
	}
	if len(diag1) != a.rows || len(diag2) != a.rows {
		return nil, fmt.Errorf("%w: diagonals %d/%d for %d rows", ErrDimensionMismatch, len(diag1), len(diag2), a.rows)
	}
	if order < 0 {
		return nil, fmt.Errorf("%w: sweep order %d", ErrDimensionMismatch, order)
	}
	if len(imp) > 0 && len(imp) < order {
		return nil, fmt.Errorf("%w: %d impulse matrices for order %d", ErrDimensionMismatch, len(imp), order)
	}
	for m, im := range imp {
		if im == nil || im.rows != a.rows || im.cols != a.cols {
			return nil, fmt.Errorf("%w: impulse matrix %d", ErrDimensionMismatch, m+1)
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > a.rows {
		workers = a.rows
	}
	resolved, band, col32, qbd, err := resolveStorage(a, format)
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		a:         a,
		rows:      a.rows,
		diag1:     diag1,
		diag2:     diag2,
		imp:       imp,
		order:     order,
		workers:   workers,
		format:    resolved,
		band:      band,
		col32:     col32,
		qbd:       qbd,
		tile:      sweepTileDefault,
		resolvedT: 1,
	}
	s.resolveSIMD()
	s.initCoef()
	if workers > 1 {
		// Per-row work in stored non-zeros, plus the impulse matrices'
		// entries and the constant rowBase charge.
		s.blocks = partitionRows(a.rows, workers, func(i int) int64 {
			c := int64(rowBase + a.rowPtr[i+1] - a.rowPtr[i])
			for _, im := range imp {
				c += int64(im.rowPtr[i+1] - im.rowPtr[i])
			}
			return c
		})
	}
	return s, nil
}

// NewSweepOperator prepares a sweep that streams a matrix-free Operator
// instead of an explicit CSR. Impulse matrices are not supported on this
// path (models large enough to need a matrix-free generator cannot carry
// explicit impulse matrices either); diag2 must already carry any
// constant factor, as in NewSweep. The operator's bitwise contract (see
// Operator) makes the result identical to a sweep over the materialized
// matrix in every format and for every worker count.
func NewSweepOperator(op Operator, diag1, diag2 []float64, order, workers int) (*Sweep, error) {
	if op == nil {
		return nil, fmt.Errorf("%w: nil sweep operator", ErrDimensionMismatch)
	}
	rows := op.Rows()
	if rows <= 0 {
		return nil, fmt.Errorf("%w: sweep operator with %d rows", ErrDimensionMismatch, rows)
	}
	if len(diag1) != rows || len(diag2) != rows {
		return nil, fmt.Errorf("%w: diagonals %d/%d for %d rows", ErrDimensionMismatch, len(diag1), len(diag2), rows)
	}
	if order < 0 {
		return nil, fmt.Errorf("%w: sweep order %d", ErrDimensionMismatch, order)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > rows {
		workers = rows
	}
	s := &Sweep{
		op:        op,
		rows:      rows,
		diag1:     diag1,
		diag2:     diag2,
		order:     order,
		workers:   workers,
		format:    op.OpFormat(),
		tile:      sweepTileDefault,
		resolvedT: 1,
	}
	s.resolveSIMD()
	if ks, ok := op.(*KronSum); ok {
		s.kron = ks
	}
	s.initCoef()
	if workers > 1 {
		if s.kron != nil {
			// Kronecker-sum sweeps have a closed-form total row cost and
			// O(1)-amortized per-row costs along the odometer walk, so the
			// partition is computed without the per-row coordinate decode
			// (and its F divisions) RowCost would repeat n times.
			s.blocks = partitionKron(s.kron, workers)
		} else {
			s.blocks = partitionRows(rows, workers, func(i int) int64 {
				return rowBase + op.RowCost(i)
			})
		}
	}
	return s, nil
}

// initCoef fills coef[m] = 1/m! maintained by the same running division
// the reference recursion uses, so fused impulse terms match it bit for
// bit.
func (s *Sweep) initCoef() {
	s.coef = make([]float64, s.order+1)
	inv := 1.0
	for m := 1; m <= s.order; m++ {
		inv /= float64(m)
		s.coef[m] = inv
	}
}

// rowBase is the constant per-row partitioning charge beyond the matrix
// entries: diagonal terms, the next-vector store, and accumulation
// traffic.
const rowBase = 4

// partitionRows splits the rows into contiguous blocks of roughly equal
// work under the given per-row cost function. Row-count splitting is
// wrong for skewed patterns — a dense hub row costs as much as thousands
// of tridiagonal rows — so explicit formats charge stored non-zeros and
// matrix-free operators their RowCost.
func partitionRows(rows, workers int, rowCost func(int) int64) []int {
	var total int64
	for i := 0; i < rows; i++ {
		total += rowCost(i)
	}
	blocks := make([]int, workers+1)
	blocks[workers] = rows
	b := 1
	var cum int64
	for i := 0; i < rows && b < workers; i++ {
		cum += rowCost(i)
		// Cut after row i once this block reached its share of the total.
		for b < workers && cum*int64(workers) >= int64(b)*total {
			blocks[b] = i + 1
			b++
		}
	}
	for ; b < workers; b++ {
		blocks[b] = rows
	}
	return blocks
}

// Format returns the resolved storage format the fused kernels stream:
// FormatBand, FormatQBD, FormatCSR32, FormatCSR64, or FormatKron for
// Kronecker-sum operator sweeps. (RunReference always streams the
// generic CSR — or, for operator sweeps, the operator itself —
// regardless of this setting.)
func (s *Sweep) Format() MatrixFormat { return s.format }

// Scratch4Words returns the float64 count Run would use for its
// interleaved moment-state buffers: 0 when the run shape doesn't use
// them (order != 3, impulse terms present, or a generic operator without
// an interleaved kernel), otherwise two buffers of 4 values per state
// plus the band boundary padding.
func (s *Sweep) Scratch4Words() int {
	if s.order != 3 || len(s.imp) > 0 {
		return 0
	}
	if s.a == nil && s.kron == nil {
		return 0 // generic operator: only the planar streaming path exists
	}
	pad := 0
	if s.format == FormatBand {
		pad = s.band.lo + s.band.hi
	}
	return 2 * 4 * (s.rows + pad)
}

// SetScratch4 lends Run a scratch buffer of at least Scratch4Words()
// float64s for its interleaved state (contents need not be zeroed),
// eliminating the two largest per-run allocations; pooled solves use it.
// A short (or nil) buffer is ignored and Run allocates as before. The
// buffer is used only while Run executes and may be reused afterwards.
func (s *Sweep) SetScratch4(buf []float64) { s.scratch4 = buf }

// SetSweepTile overrides the row-tile width of the fused kernels — the
// rows each tight vector pass covers before the next term's pass — and
// with it the block width of the temporally blocked driver, so spatial
// and temporal tile shapes are tunable together. Values below 1 keep the
// default (sweepTileDefault). The tile only reorders work across rows;
// every width is bitwise identical.
func (s *Sweep) SetSweepTile(w int) {
	if w > 0 {
		s.tile = w
	}
}

// SetTemporalBlock requests wavefront temporal blocking for Run: t
// consecutive sweep iterations are executed over each cache-resident row
// block before the next block is touched (see runBlockedSerial). 0 (the
// default) tunes the depth automatically from the matrix bandwidth and
// the state footprint; 1 or negative disables blocking; larger values
// force that depth (capped at maxTemporalBlock) wherever blocking is
// structurally possible. Every setting is bitwise identical to the
// unblocked sweep; TemporalBlock reports what the last Run resolved.
func (s *Sweep) SetTemporalBlock(t int) {
	if t > maxTemporalBlock {
		t = maxTemporalBlock
	}
	s.tblock = t
}

// TemporalBlock returns the temporal blocking depth the last Run
// resolved: 1 for an unblocked run (including every RunReference), the
// group depth T otherwise.
func (s *Sweep) TemporalBlock() int { return s.resolvedT }

// Temporal blocking constants.
const (
	// sweepTileDefault is the default row-tile width (see SetSweepTile):
	// a tile's slices of every cur/next/acc vector — roughly
	// (3 + plans)·(order+1)·8·tile bytes — plus its matrix rows must stay
	// cache-resident across the kernel's per-term passes. 1024 rows keeps
	// that footprint near 100 KiB for the paper-sized order-3 case,
	// comfortably inside L2.
	sweepTileDefault = 1024
	// temporalBlockDefault is the auto-tuned blocking depth: deep enough
	// to cut DRAM traffic ~16x, shallow enough that the halo shift
	// (T-1)·skew stays a small fraction of the default block width.
	// Tuned on the paper's N=100,001 tridiagonal example, where depth 16
	// beat 8 by ~15% and 32 added nothing.
	temporalBlockDefault = 16
	// maxTemporalBlock caps forced depths; beyond it the halo bookkeeping
	// dwarfs any conceivable traffic win.
	maxTemporalBlock = 1024
	// temporalBlockMinWords is the interleaved-state footprint below which
	// the automatic policy leaves blocking off: a state set this small
	// (2 MiB for both buffers) is already cache-resident, so re-running
	// iterations over row blocks saves nothing.
	temporalBlockMinWords = 1 << 18
	// csrAutoBlockMaxSkew bounds the matrix bandwidth up to which the
	// automatic policy temporally blocks the vectorized CSR32 kernel —
	// the same reach ceiling the auto QBD policy implies (blocks of up
	// to maxAutoQBDBlock phases reach 2b-1 rows). Beyond it the policy
	// has no measurement and stays unblocked.
	csrAutoBlockMaxSkew = 2*maxAutoQBDBlock - 1
)

// blockReach returns the dependency reach of the resolved storage: row i
// of the next iteration depends on rows i-lo..i+hi of the current one.
// ok is false when the reach is unknown or unbounded (matrix-free
// Kronecker-sum sweeps, generic operators), which disables temporal
// blocking.
func (s *Sweep) blockReach() (lo, hi int, ok bool) {
	switch s.format {
	case FormatBand:
		return s.band.lo, s.band.hi, true
	case FormatQBD:
		// A QBD entry couples level i/b only to adjacent levels, so the
		// scalar reach is at most 2b-1 on both sides.
		r := 2*s.qbd.b - 1
		return r, r, true
	case FormatCSR32, FormatCSR64:
		if s.a == nil {
			return 0, 0, false
		}
		lo, hi = s.a.Bandwidth()
		return lo, hi, true
	}
	return 0, 0, false
}

// resolveBlocking turns the requested temporal block depth into the
// (T, W, skew) the blocked drivers run: T inner iterations per group over
// blocks of W rows, each inner step's row window sliding skew rows to the
// left (the parallelogram schedule of runBlockedSerial). T == 1 means the
// run stays unblocked. W is forced up to 2·skew — the width at which
// concurrent wavefront tasks provably cannot touch each other's reads or
// writes (see runBlockedParallel) — so callers may set any tile size.
func (s *Sweep) resolveBlocking() (T, W, skew int) {
	T, W = 1, s.tile
	if s.tblock < 0 || s.tblock == 1 {
		return
	}
	lo, hi, ok := s.blockReach()
	if !ok {
		return
	}
	skew = lo
	if hi > skew {
		skew = hi
	}
	if W < 2*skew {
		W = 2 * skew
	}
	if W < 1 {
		W = 1
	}
	if s.tblock == 0 {
		if s.Scratch4Words() < temporalBlockMinWords {
			return 1, W, skew // state already cache-resident: blocking cannot pay
		}
		switch s.format {
		case FormatBand, FormatQBD:
			// The index-free formats are DRAM-bound and always gain.
		case FormatCSR32:
			// The scalar CSR kernel gains nothing from blocking (the
			// index-chasing row loop, not DRAM bandwidth, is the
			// bottleneck, and the wavefront bookkeeping costs ~12-29%
			// measured). The AVX2 kernel retires the whole gather in one
			// load and is memory-bound like the band kernel — blocking
			// it measured ~22% faster on the N=100,001 ablation — so it
			// auto-blocks, but only while the bandwidth-derived skew is
			// in the regime the measurement covered (wider reaches force
			// W up and shrink the depth until blocking is all halo).
			// Forced depths still block every CSR shape for the difftest
			// gates and benchmark ablations.
			if !s.simd || skew > csrAutoBlockMaxSkew {
				return 1, W, skew
			}
		default:
			return 1, W, skew
		}
		T = temporalBlockDefault
		if skew > 0 {
			// Keep the total halo shift under half a block, so the extra
			// rows a group streams stay a small fraction of W.
			if c := 1 + W/(2*skew); T > c {
				T = c
			}
		}
		return
	}
	T = s.tblock
	return
}

// InterruptHook observes a sweep interruption. It runs exactly at an
// iteration barrier: iteration `completed` has fully finished (every
// worker joined, accumulations applied, state swapped) and iteration
// completed+1 has not started, so the sweep state is a consistent
// snapshot. export copies the current moment-state vectors U^(j)(completed)
// into dst — order+1 vectors of Rows() entries each — deinterleaving the
// order-3 layout when the run uses it. A sweep resumed from that state
// with RunFrom(ctx, completed+1, ...) is bitwise identical to the
// uninterrupted run.
type InterruptHook func(completed int, export func(dst [][]float64))

// SetInterruptHook installs the hook Run and RunReference invoke when a
// context cancellation is observed mid-sweep (nil disables). The hook runs
// on the driver goroutine while every worker is parked at the release
// barrier, so it may read any sweep state without synchronization.
func (s *Sweep) SetInterruptHook(h InterruptHook) { s.onInterrupt = h }

// exportState copies the current moment-state vectors into dst,
// deinterleaving the order-3 layout when active. Only called at iteration
// barriers (see InterruptHook), where the published state is consistent.
func (s *Sweep) exportState(dst [][]float64) {
	if s.cur4 != nil {
		base := 0
		if s.format == FormatBand {
			base = s.band.lo * 4
		}
		for j := range dst {
			dj := dst[j]
			for i := 0; i < s.rows; i++ {
				dj[i] = s.cur4[base+i*4+j]
			}
		}
		return
	}
	for j := range dst {
		copy(dst[j], s.cur[j])
	}
}

// matVecs returns the sparse product count of g completed iterations,
// matching the reference recursion's bookkeeping: order+1 products with
// the sweep matrix per iteration, plus one impulse product per (j, m)
// pair with 1 <= m <= j when impulses are present.
func (s *Sweep) matVecs(g int) int64 {
	perIter := int64(s.order + 1)
	if len(s.imp) > 0 {
		perIter += int64(s.order * (s.order + 1) / 2)
	}
	return perIter * int64(g)
}

// validateRun checks the per-run buffers against the prepared family.
func (s *Sweep) validateRun(cur, next [][]float64, plans []SweepPlan) error {
	n := s.rows
	if len(cur) != s.order+1 || len(next) != s.order+1 {
		return fmt.Errorf("%w: %d/%d sweep vectors for order %d", ErrDimensionMismatch, len(cur), len(next), s.order)
	}
	for j := 0; j <= s.order; j++ {
		if len(cur[j]) != n || len(next[j]) != n {
			return fmt.Errorf("%w: sweep vector %d has %d/%d entries for %d rows", ErrDimensionMismatch, j, len(cur[j]), len(next[j]), n)
		}
	}
	for pi := range plans {
		p := &plans[pi]
		if p.Last < p.First {
			continue // inert plan (e.g. t = 0)
		}
		if p.First < 0 || p.Last >= len(p.Weight) {
			return fmt.Errorf("%w: plan %d window [%d,%d] outside %d weights", ErrDimensionMismatch, pi, p.First, p.Last, len(p.Weight))
		}
		if len(p.Acc) != s.order+1 {
			return fmt.Errorf("%w: plan %d has %d accumulators for order %d", ErrDimensionMismatch, pi, len(p.Acc), s.order)
		}
		for j := range p.Acc {
			if len(p.Acc[j]) != n {
				return fmt.Errorf("%w: plan %d accumulator %d has %d entries for %d rows", ErrDimensionMismatch, pi, j, len(p.Acc[j]), n)
			}
		}
	}
	return nil
}

// gatherActive appends the accumulation targets of iteration k to buf:
// plans whose window contains k with a non-zero weight.
func gatherActive(plans []SweepPlan, k int, buf []accPair) []accPair {
	for pi := range plans {
		p := &plans[pi]
		if k < p.First || k > p.Last {
			continue
		}
		if w := p.Weight[k]; w != 0 {
			buf = append(buf, accPair{w: w, acc: p.Acc})
		}
	}
	return buf
}

// Run executes gMax fused iterations, polling ctx every cancelStride
// iterations, and returns the number of sparse products performed. The
// initial state is cur; accumulations land in the plans' Acc buffers.
// cur and next are scratch the sweep alternates between — their contents
// after Run are unspecified.
//
// With a team size of 1 the fused kernel runs inline (no goroutines);
// larger teams run the persistent workers described in the file comment.
func (s *Sweep) Run(ctx context.Context, gMax int, cur, next [][]float64, plans []SweepPlan, cancelStride int) (int64, error) {
	return s.RunFrom(ctx, 1, gMax, cur, next, plans, cancelStride)
}

// RunFrom is Run starting at iteration first instead of 1: cur must hold
// the moment-state vectors U^(j)(first-1) — for first == 1 the caller's
// initial state, for larger first a state exported by an InterruptHook —
// and the plans' Acc buffers must already carry every accumulation of
// iterations k < first. Because each iteration's floating-point work
// depends only on the incoming state and its own Poisson weights, a run
// resumed this way is bitwise identical to the uninterrupted sweep, for
// every storage format and worker count.
func (s *Sweep) RunFrom(ctx context.Context, first, gMax int, cur, next [][]float64, plans []SweepPlan, cancelStride int) (int64, error) {
	if err := s.validateRun(cur, next, plans); err != nil {
		return 0, err
	}
	if first < 1 {
		return 0, fmt.Errorf("%w: resume iteration %d < 1", ErrDimensionMismatch, first)
	}
	if cancelStride <= 0 {
		cancelStride = 1
	}
	active := make([]accPair, 0, len(plans))

	// The order-3 impulse-free shape (the paper's large example) runs the
	// whole sweep on the interleaved state layout: cur4[(pad+i)*4+j] holds
	// moment j of state i, so all four values a matrix entry gathers share
	// one cache line. With the band format the buffers additionally carry
	// lo/hi states of zero padding at the ends, so the band kernel's
	// per-row window never needs boundary clamping: out-of-matrix band
	// cells multiply padding zeros, which is bitwise neutral (see band.go).
	// The planar cur/next stay untouched scratch. Generic operators (no
	// interleaved kernel) report Scratch4Words() == 0 and stay planar.
	words := s.Scratch4Words()
	interleaved := words > 0
	s.kernel = s.resolveKernel(interleaved)
	if interleaved {
		n := s.rows
		half := words / 2
		if len(s.scratch4) >= words {
			buf := s.scratch4[:words]
			s.cur4, s.next4 = buf[:half:half], buf[half:words:words]
		} else {
			buf := make([]float64, words)
			s.cur4, s.next4 = buf[:half:half], buf[half:]
		}
		base := 0
		if s.format == FormatBand {
			// Zero the boundary padding (lent scratch arrives dirty); the
			// data cells are fully (re)written below and by every iteration.
			base = s.band.lo * 4
			hi4 := s.band.hi * 4
			clear(s.cur4[:base])
			clear(s.cur4[half-hi4:])
			clear(s.next4[:base])
			clear(s.next4[half-hi4:])
		}
		for j := 0; j <= 3; j++ {
			cj := cur[j]
			for i := 0; i < n; i++ {
				s.cur4[base+i*4+j] = cj[i]
			}
		}
		defer func() { s.cur4, s.next4 = nil, nil }()
	} else {
		s.cur, s.next = cur, next
	}

	// Temporal blocking runs only the interleaved shape: the planar path
	// exists for rare shapes (impulses, generic operators) whose reach is
	// unknown, and its per-term full-vector passes would defeat the
	// cache-residency the blocking buys.
	s.resolvedT = 1
	if interleaved {
		if T, W, skew := s.resolveBlocking(); T > 1 {
			s.resolvedT = T
			return s.runBlocked(ctx, first, gMax, plans, T, W, skew)
		}
	}

	if s.workers <= 1 {
		for k := first; k <= gMax; k++ {
			if k%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					s.interrupted(k - 1)
					return 0, err
				}
			}
			s.active = gatherActive(plans, k, active[:0])
			s.step(0, s.rows)
			s.swap(interleaved)
		}
		return s.matVecs(gMax - first + 1), nil
	}

	// Persistent team: one start channel per worker forms the release
	// barrier, the shared done channel the join barrier. Workers exit when
	// their start channel closes; the defer runs only while every worker
	// is parked at its release barrier, so shutdown cannot race an
	// iteration in flight.
	start := make([]chan struct{}, s.workers)
	for w := range start {
		start[w] = make(chan struct{}, 1)
	}
	done := make(chan struct{}, s.workers)
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()
	for w := 0; w < s.workers; w++ {
		lo, hi := s.blocks[w], s.blocks[w+1]
		go func(startCh <-chan struct{}, lo, hi int) {
			for range startCh {
				s.step(lo, hi)
				done <- struct{}{}
			}
		}(start[w], lo, hi)
	}

	for k := first; k <= gMax; k++ {
		if k%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				// Every worker is parked at its release barrier here, so
				// the hook sees the consistent post-iteration-(k-1) state.
				s.interrupted(k - 1)
				return 0, err
			}
		}
		s.active = gatherActive(plans, k, active[:0])
		for _, ch := range start {
			ch <- struct{}{}
		}
		for w := 0; w < s.workers; w++ {
			<-done
		}
		s.swap(interleaved)
	}
	return s.matVecs(gMax - first + 1), nil
}

// interrupted invokes the interrupt hook, if any, with the completed
// iteration count and a state exporter.
func (s *Sweep) interrupted(completed int) {
	if s.onInterrupt != nil {
		s.onInterrupt(completed, s.exportState)
	}
}

// step runs one iteration's fused work over rows [lo, hi) against the
// published iteration state.
func (s *Sweep) step(lo, hi int) {
	if s.cur4 != nil {
		s.stepRange(lo, hi, s.cur4, s.next4, s.active)
		return
	}
	s.fuseBlock(lo, hi, s.cur, s.next, s.active)
}

// stepRange runs one interleaved iteration's fused work over rows
// [lo, hi) with explicit state buffers and accumulation targets,
// dispatching on the resolved storage format. The temporally blocked
// drivers call it directly so different inner iterations of a group can
// address alternating buffers and per-iteration Poisson targets without
// republishing the shared fields.
func (s *Sweep) stepRange(lo, hi int, cur4, next4 []float64, active []accPair) {
	switch s.format {
	case FormatBand:
		s.fuseBlock3Band(lo, hi, cur4, next4, active)
	case FormatCSR32:
		if s.simd && hi > lo && len(s.a.val) > 0 {
			s.fuseBlock3CompactAVX2(lo, hi, cur4, next4, active)
			return
		}
		s.fuseBlock3Compact(lo, hi, cur4, next4, active)
	case FormatQBD:
		if s.simd && hi > lo {
			s.fuseBlock3QBDAVX2(lo, hi, cur4, next4, active)
			return
		}
		s.fuseBlock3QBD(lo, hi, cur4, next4, active)
	case FormatKron:
		s.fuseBlock3Kron(lo, hi, cur4, next4, active)
	default:
		s.fuseBlock3(lo, hi, cur4, next4, active)
	}
}

// swap exchanges the published current/next state after an iteration.
func (s *Sweep) swap(interleaved bool) {
	if interleaved {
		s.cur4, s.next4 = s.next4, s.cur4
		return
	}
	s.cur, s.next = s.next, s.cur
}

// runBlocked executes the temporally blocked sweep. Iterations are
// processed in groups of up to T; within a group, each row block runs all
// of the group's inner iterations back to back while its rows (state,
// matrix values, diagonals, accumulators) are cache-resident, so every
// per-row array streams from DRAM once per group instead of once per
// iteration — a ~T× traffic cut for this memory-bound loop.
//
// The schedule is a time-skewed parallelogram. With block width W and
// skew s = max(lo, hi) of the dependency reach, block m at inner step t
// (1-based) computes rows
//
//	R(m, t) = [m·W − (t−1)·s, (m+1)·W − (t−1)·s) ∩ [0, n)
//
// of iteration k0+t. Sliding the window s rows left per step keeps the
// dependency cone satisfied: R(m, t) needs rows R(m, t)±reach of step
// t−1, all of which lie in blocks ≤ m at step t−1. The two interleaved
// state buffers alternate per inner step (odd steps read cur4 and write
// next4, even steps the reverse), and each step's Poisson accumulations
// are applied inside the kernel at its own iteration's weights, so the
// per-element operation sequence — and therefore every bit of the result
// — is identical to the unblocked sweep: blocking only reorders work
// between different (row, iteration) pairs.
//
// Context cancellation is observed at group boundaries only, where the
// state is a consistent iteration snapshot (checkpoint barriers land
// there); resume tokens from unblocked runs remain valid because groups
// are re-based at `first`.
func (s *Sweep) runBlocked(ctx context.Context, first, gMax int, plans []SweepPlan, T, W, skew int) (int64, error) {
	activeT := make([][]accPair, T+1)
	var start []chan struct{}
	var done chan struct{}
	if s.workers > 1 {
		g := &wavefrontGroup{W: W, skew: skew}
		g.cond = sync.NewCond(&g.mu)
		s.wf = g
		start = make([]chan struct{}, s.workers)
		for w := range start {
			start[w] = make(chan struct{}, 1)
		}
		done = make(chan struct{}, s.workers)
		defer func() {
			for _, ch := range start {
				close(ch)
			}
			s.wf = nil
		}()
		for w := 0; w < s.workers; w++ {
			go func(startCh <-chan struct{}, w int) {
				for range startCh {
					s.wavefrontWorker(w)
					done <- struct{}{}
				}
			}(start[w], w)
		}
	}
	for k0 := first - 1; k0 < gMax; {
		if err := ctx.Err(); err != nil {
			// Group boundary: iteration k0 fully complete, k0+1 not started.
			s.interrupted(k0)
			return 0, err
		}
		Tg := T
		if rem := gMax - k0; Tg > rem {
			Tg = rem // ragged final group when T does not divide the span
		}
		for t := 1; t <= Tg; t++ {
			activeT[t] = gatherActive(plans, k0+t, activeT[t][:0])
		}
		// Enough blocks that the final inner step — shifted (Tg−1)·skew rows
		// left — still covers the top of the matrix.
		blocks := (s.rows + (Tg-1)*skew + W - 1) / W
		if s.workers > 1 {
			g := s.wf
			g.T, g.blocks, g.activeT = Tg, blocks, activeT
			if cap(g.progress) < blocks {
				g.progress = make([]int, blocks)
			}
			g.progress = g.progress[:blocks]
			clear(g.progress)
			for _, ch := range start {
				ch <- struct{}{}
			}
			for w := 0; w < s.workers; w++ {
				<-done
			}
		} else {
			// Serial: depth-first per block — all Tg steps of block m before
			// block m+1 touches memory. Correct because R(m, t)'s dependency
			// cone at step t−1 ends at (m+1)·W − (t−2)·s + hi − s ≤ block m's
			// own step-(t−1) upper edge, already computed.
			for m := 0; m < blocks; m++ {
				cur4, next4 := s.cur4, s.next4
				for t := 1; t <= Tg; t++ {
					l := m*W - (t-1)*skew
					r := l + W
					if l < 0 {
						l = 0
					}
					if r > s.rows {
						r = s.rows
					}
					if l < r {
						s.stepRange(l, r, cur4, next4, activeT[t])
					}
					cur4, next4 = next4, cur4
				}
			}
		}
		if Tg%2 == 1 {
			// Odd group depth leaves the newest state in next4; swap so the
			// group-boundary invariant (cur4 = iteration k0) holds for
			// exportState and the next group.
			s.swap(true)
		}
		k0 += Tg
	}
	return s.matVecs(gMax - first + 1), nil
}

// wavefrontGroup is the shared state of one temporally blocked group
// executed by the worker team: the group shape, the per-inner-step
// accumulation targets, and the progress vector the wavefront
// synchronizes on (progress[m] = last inner step block m completed).
// The mutex/condvar pair both orders the data accesses (a block's writes
// happen before any dependent's reads) and keeps the schedule race-free
// under the race detector.
type wavefrontGroup struct {
	T, W, skew, blocks int
	activeT            [][]accPair
	mu                 sync.Mutex
	cond               *sync.Cond
	progress           []int
}

// wavefrontWorker runs worker w's share of the current group: blocks
// m ≡ w (mod workers), block-cyclic so the wavefront stays dense, each
// depth-first through the group's inner steps. Block m at step t waits
// only for progress[m−1] ≥ t−1; with W ≥ 2·skew (enforced by
// resolveBlocking) that single constraint makes every concurrently
// running (block, step) pair touch disjoint rows of each buffer — the
// binding cases are a block two ahead on the same buffer parity, which
// W ≥ skew+hi separates, and the lagging mirror, separated by
// W ≥ skew+lo. Deadlock-free: the lowest unfinished block's predecessor
// is complete, so its owner always progresses; empty clipped ranges
// still bump progress so successors never stall on them.
func (s *Sweep) wavefrontWorker(w int) {
	g := s.wf
	for m := w; m < g.blocks; m += s.workers {
		cur4, next4 := s.cur4, s.next4
		for t := 1; t <= g.T; t++ {
			if m > 0 && t > 1 {
				g.mu.Lock()
				for g.progress[m-1] < t-1 {
					g.cond.Wait()
				}
				g.mu.Unlock()
			}
			l := m*g.W - (t-1)*g.skew
			r := l + g.W
			if l < 0 {
				l = 0
			}
			if r > s.rows {
				r = s.rows
			}
			if l < r {
				s.stepRange(l, r, cur4, next4, g.activeT[t])
			}
			g.mu.Lock()
			g.progress[m] = t
			g.mu.Unlock()
			g.cond.Broadcast()
			cur4, next4 = next4, cur4
		}
	}
}

// fuseBlock runs one fused iteration over rows [lo, hi), tiled: for each
// row tile it computes every moment order's recursion term and immediately
// applies the active Poisson accumulations while the tile is hot in cache.
// The inner loops are the same shape as CSR.MatVec (hoisted slice headers,
// streaming index ranges); the tiling only reorders work across rows, so
// the floating-point operation sequence per element is identical to
// RunReference's — the fused kernel is bitwise exact by construction.
//
// Relative to the reference sweep, one iteration here streams the matrix
// and the vectors from memory once instead of once per term: the CSR rows
// of a tile are reused across the order+1 products, and each next-vector
// tile is produced, corrected and accumulated before it is evicted.
func (s *Sweep) fuseBlock(lo, hi int, cur, next [][]float64, active []accPair) {
	for t0 := lo; t0 < hi; t0 += s.tile {
		t1 := t0 + s.tile
		if t1 > hi {
			t1 = hi
		}
		for j := s.order; j >= 0; j-- {
			curj, nextj := cur[j], next[j]
			s.productTile(t0, t1, curj, nextj)
			if j >= 1 {
				d1, c1 := s.diag1, cur[j-1]
				for i := t0; i < t1; i++ {
					nextj[i] += d1[i] * c1[i]
				}
			}
			if j >= 2 {
				d2, c2 := s.diag2, cur[j-2]
				for i := t0; i < t1; i++ {
					nextj[i] += d2[i] * c2[i]
				}
			}
			for m := 1; m <= j && m <= len(s.imp); m++ {
				im := s.imp[m-1]
				irp, icx, ivl := im.rowPtr, im.colIdx, im.val
				cf, cm := s.coef[m], cur[j-m]
				for i := t0; i < t1; i++ {
					var impSum float64
					for p := irp[i]; p < irp[i+1]; p++ {
						impSum += ivl[p] * cm[icx[p]]
					}
					nextj[i] += cf * impSum
				}
			}
		}
		for _, ap := range active {
			w := ap.w
			for j := 0; j <= s.order; j++ {
				nj, aj := next[j], ap.acc[j]
				for i := t0; i < t1; i++ {
					aj[i] += w * nj[i]
				}
			}
		}
	}
}

// fuseBlock3 is the register-resident specialization of the fused kernel
// for the hot shape: moment order 3 (the paper's large example) without
// impulse matrices. It operates on the interleaved state layout set up by
// Run — cur4[i*4+j] is moment j of state i — so each matrix entry's four
// gathered values share one cache line and cost a single bounds check.
// Each row's four recursion sums live in registers across a single walk
// of the row's entries — the matrix streams once per iteration instead of
// order+1 times — and the diagonal corrections and Poisson accumulations
// are applied before the sums are ever reloaded from memory.
//
// Bitwise contract: every output element sees the identical operation
// sequence as RunReference — per sum, the row products in entry order,
// then the diag1 term, then the diag2 term; each accumulation multiplies
// the same stored value. Only work belonging to *different* elements is
// interleaved, which float64 cannot observe.
func (s *Sweep) fuseBlock3(lo, hi int, cur4, next4 []float64, active []accPair) {
	rowPtr, colIdx, val := s.a.rowPtr, s.a.colIdx, s.a.val
	d1, d2 := s.diag1, s.diag2
	var w float64
	var a0, a1, a2, a3 []float64
	if len(active) == 1 {
		w = active[0].w
		a0, a1, a2, a3 = active[0].acc[0], active[0].acc[1], active[0].acc[2], active[0].acc[3]
	}
	for i := lo; i < hi; i++ {
		rv := val[rowPtr[i]:rowPtr[i+1]]
		rc := colIdx[rowPtr[i]:rowPtr[i+1]]
		rc = rc[:len(rv)] // bounds-check elimination for rc[p]
		var s0, s1, s2, s3 float64
		for p, v := range rv {
			c4 := rc[p] * 4
			cv := cur4[c4 : c4+4 : c4+4]
			s3 += v * cv[3]
			s2 += v * cv[2]
			s1 += v * cv[1]
			s0 += v * cv[0]
		}
		civ := cur4[i*4 : i*4+4 : i*4+4]
		d1i, d2i := d1[i], d2[i]
		s3 += d1i * civ[2]
		s3 += d2i * civ[1]
		s2 += d1i * civ[1]
		s2 += d2i * civ[0]
		s1 += d1i * civ[0]
		nv := next4[i*4 : i*4+4 : i*4+4]
		nv[0], nv[1], nv[2], nv[3] = s0, s1, s2, s3
		switch {
		case a0 != nil:
			a0[i] += w * s0
			a1[i] += w * s1
			a2[i] += w * s2
			a3[i] += w * s3
		case len(active) > 1:
			for _, ap := range active {
				wp := ap.w
				ap.acc[0][i] += wp * s0
				ap.acc[1][i] += wp * s1
				ap.acc[2][i] += wp * s2
				ap.acc[3][i] += wp * s3
			}
		}
	}
}

// productTile computes y[i] = (A·x)[i] for rows [t0, t1) with the resolved
// storage format. Every arm accumulates the row's in-matrix entries in
// ascending column order into a sum started at +0.0, so the arms are
// bitwise interchangeable: the compact arm loads the identical values
// through narrower indexes, and the band arm's extra in-band zero cells
// contribute bitwise-neutral 0.0·x products (see band.go).
func (s *Sweep) productTile(t0, t1 int, x, y []float64) {
	if s.a == nil {
		// Operator-backed sweep: the operator's MatVecRange carries the
		// same ascending-column/+0.0 contract (see Operator).
		s.op.MatVecRange(t0, t1, x, y)
		return
	}
	switch s.format {
	case FormatQBD:
		s.qbd.matVecRange(t0, t1, x, y)
	case FormatBand:
		bd := s.band
		n, blo, width, bval := bd.n, bd.lo, bd.width, bd.val
		for i := t0; i < t1; i++ {
			row := bval[i*width : (i+1)*width]
			base := i - blo
			k0, k1 := 0, width
			if base < 0 {
				k0 = -base
			}
			if base+width > n {
				k1 = n - base
			}
			var sum float64
			for k := k0; k < k1; k++ {
				sum += row[k] * x[base+k]
			}
			y[i] = sum
		}
	case FormatCSR32:
		rowPtr, col32, val := s.a.rowPtr, s.col32, s.a.val
		for i := t0; i < t1; i++ {
			var sum float64
			for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
				sum += val[p] * x[col32[p]]
			}
			y[i] = sum
		}
	default:
		rowPtr, colIdx, val := s.a.rowPtr, s.a.colIdx, s.a.val
		for i := t0; i < t1; i++ {
			var sum float64
			for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
				sum += val[p] * x[colIdx[p]]
			}
			y[i] = sum
		}
	}
}

// fuseBlock3Compact is fuseBlock3 streaming the compact-index columns:
// identical structure, but each gather address comes from a uint32 load —
// half the index traffic of the generic kernel in a loop that is
// memory-bandwidth-bound at the paper's sizes.
func (s *Sweep) fuseBlock3Compact(lo, hi int, cur4, next4 []float64, active []accPair) {
	rowPtr, val := s.a.rowPtr, s.a.val
	col32 := s.col32
	d1, d2 := s.diag1, s.diag2
	var w float64
	var a0, a1, a2, a3 []float64
	if len(active) == 1 {
		w = active[0].w
		a0, a1, a2, a3 = active[0].acc[0], active[0].acc[1], active[0].acc[2], active[0].acc[3]
	}
	for i := lo; i < hi; i++ {
		rv := val[rowPtr[i]:rowPtr[i+1]]
		rc := col32[rowPtr[i]:rowPtr[i+1]]
		rc = rc[:len(rv)] // bounds-check elimination for rc[p]
		var s0, s1, s2, s3 float64
		for p, v := range rv {
			c4 := int(rc[p]) * 4
			cv := cur4[c4 : c4+4 : c4+4]
			s3 += v * cv[3]
			s2 += v * cv[2]
			s1 += v * cv[1]
			s0 += v * cv[0]
		}
		civ := cur4[i*4 : i*4+4 : i*4+4]
		d1i, d2i := d1[i], d2[i]
		s3 += d1i * civ[2]
		s3 += d2i * civ[1]
		s2 += d1i * civ[1]
		s2 += d2i * civ[0]
		s1 += d1i * civ[0]
		nv := next4[i*4 : i*4+4 : i*4+4]
		nv[0], nv[1], nv[2], nv[3] = s0, s1, s2, s3
		switch {
		case a0 != nil:
			a0[i] += w * s0
			a1[i] += w * s1
			a2[i] += w * s2
			a3[i] += w * s3
		case len(active) > 1:
			for _, ap := range active {
				wp := ap.w
				ap.acc[0][i] += wp * s0
				ap.acc[1][i] += wp * s1
				ap.acc[2][i] += wp * s2
				ap.acc[3][i] += wp * s3
			}
		}
	}
}

// fuseBlock3Band is fuseBlock3 streaming the band representation on the
// padded interleaved layout Run sets up: row i's state window starts at
// cur4[i*4] and spans 4·width values — one fully contiguous stretch, zero
// index loads, zero gathers. The lo/hi padding states at the buffer ends
// absorb the out-of-matrix band cells, so the row loop has no boundary
// branches; the padded cells' 0.0·x products are bitwise neutral (see
// band.go), leaving every output element with exactly the reference
// operation sequence.
func (s *Sweep) fuseBlock3Band(lo, hi int, cur4, next4 []float64, active []accPair) {
	bd := s.band
	width, bval := bd.width, bd.val
	pad := bd.lo * 4
	d1, d2 := s.diag1, s.diag2
	var w float64
	var a0, a1, a2, a3 []float64
	if len(active) == 1 {
		w = active[0].w
		a0, a1, a2, a3 = active[0].acc[0], active[0].acc[1], active[0].acc[2], active[0].acc[3]
	}
	if bd.lo == 1 && bd.hi == 1 {
		// Tridiagonal fast path (the paper's birth-death generators): three
		// band values and a 12-value state window per row, fully unrolled
		// into straight-line register code. Gated on lo==hi==1, not
		// width==3 — a lo=0,hi=2 band has width 3 but a different
		// self-moment offset.
		//
		// On AVX2 hardware the 4 moment components run as one vector lane
		// group (band_simd_amd64.s): per lane the assembly executes this
		// loop's exact operation sequence with the same IEEE rounding, so
		// its output is bitwise the scalar loop's. Multi-plan accumulation
		// runs the plain kernel plus tiled per-plan accumulation passes
		// (see accTile3 for why the split is bitwise neutral).
		if s.simd && hi > lo {
			if a0 != nil {
				bandTri3AccAVX2(hi-lo, &bval[lo*3], &cur4[lo*4], &next4[4+lo*4], &d1[lo], &d2[lo], &a0[lo], &a1[lo], &a2[lo], &a3[lo], w)
				return
			}
			if len(active) == 0 {
				bandTri3AVX2(hi-lo, &bval[lo*3], &cur4[lo*4], &next4[4+lo*4], &d1[lo], &d2[lo])
				return
			}
			for t0 := lo; t0 < hi; t0 += s.tile {
				t1 := t0 + s.tile
				if t1 > hi {
					t1 = hi
				}
				bandTri3AVX2(t1-t0, &bval[t0*3], &cur4[t0*4], &next4[4+t0*4], &d1[t0], &d2[t0])
				s.accTile3(t0, t1, next4, 4, active)
			}
			return
		}
		for i := lo; i < hi; i++ {
			r := bval[i*3 : i*3+3 : i*3+3]
			cw := cur4[i*4 : i*4+12 : i*4+12]
			v0, v1, v2 := r[0], r[1], r[2]
			var s0, s1, s2, s3 float64
			s3 += v0 * cw[3]
			s2 += v0 * cw[2]
			s1 += v0 * cw[1]
			s0 += v0 * cw[0]
			s3 += v1 * cw[7]
			s2 += v1 * cw[6]
			s1 += v1 * cw[5]
			s0 += v1 * cw[4]
			s3 += v2 * cw[11]
			s2 += v2 * cw[10]
			s1 += v2 * cw[9]
			s0 += v2 * cw[8]
			d1i, d2i := d1[i], d2[i]
			s3 += d1i * cw[6]
			s3 += d2i * cw[5]
			s2 += d1i * cw[5]
			s2 += d2i * cw[4]
			s1 += d1i * cw[4]
			nv := next4[4+i*4 : 8+i*4 : 8+i*4]
			nv[0], nv[1], nv[2], nv[3] = s0, s1, s2, s3
			switch {
			case a0 != nil:
				a0[i] += w * s0
				a1[i] += w * s1
				a2[i] += w * s2
				a3[i] += w * s3
			case len(active) > 1:
				for _, ap := range active {
					wp := ap.w
					ap.acc[0][i] += wp * s0
					ap.acc[1][i] += wp * s1
					ap.acc[2][i] += wp * s2
					ap.acc[3][i] += wp * s3
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		row := bval[i*width : (i+1)*width : (i+1)*width]
		cw := cur4[i*4 : i*4+4*width]
		var s0, s1, s2, s3 float64
		for k, v := range row {
			k4 := k * 4
			cv := cw[k4 : k4+4 : k4+4]
			s3 += v * cv[3]
			s2 += v * cv[2]
			s1 += v * cv[1]
			s0 += v * cv[0]
		}
		civ := cw[pad : pad+4 : pad+4]
		d1i, d2i := d1[i], d2[i]
		s3 += d1i * civ[2]
		s3 += d2i * civ[1]
		s2 += d1i * civ[1]
		s2 += d2i * civ[0]
		s1 += d1i * civ[0]
		nv := next4[pad+i*4 : pad+i*4+4 : pad+i*4+4]
		nv[0], nv[1], nv[2], nv[3] = s0, s1, s2, s3
		switch {
		case a0 != nil:
			a0[i] += w * s0
			a1[i] += w * s1
			a2[i] += w * s2
			a3[i] += w * s3
		case len(active) > 1:
			for _, ap := range active {
				wp := ap.w
				ap.acc[0][i] += wp * s0
				ap.acc[1][i] += wp * s1
				ap.acc[2][i] += wp * s2
				ap.acc[3][i] += wp * s3
			}
		}
	}
}

// RunReference executes the sweep with the serial reference kernel: one
// full-vector pass per term, exactly the operation structure of the
// original solver loop. It is the oracle the fused kernel is tested
// against and the production path for matrices too small to amortize the
// worker barrier.
func (s *Sweep) RunReference(ctx context.Context, gMax int, cur, next [][]float64, plans []SweepPlan, cancelStride int) (int64, error) {
	return s.RunReferenceFrom(ctx, 1, gMax, cur, next, plans, cancelStride)
}

// RunReferenceFrom is RunReference starting at iteration first, with the
// same resume contract as RunFrom: cur holds U^(j)(first-1) and the Acc
// buffers carry all accumulations of iterations below first.
func (s *Sweep) RunReferenceFrom(ctx context.Context, first, gMax int, cur, next [][]float64, plans []SweepPlan, cancelStride int) (int64, error) {
	if err := s.validateRun(cur, next, plans); err != nil {
		return 0, err
	}
	if first < 1 {
		return 0, fmt.Errorf("%w: resume iteration %d < 1", ErrDimensionMismatch, first)
	}
	if cancelStride <= 0 {
		cancelStride = 1
	}
	s.kernel = KernelScalar // the reference loops never dispatch assembly
	n := s.rows
	for k := first; k <= gMax; k++ {
		if k%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				if s.onInterrupt != nil {
					// The reference sweep alternates local slices, so export
					// from the loop's own current state rather than the
					// fused path's published fields.
					s.onInterrupt(k-1, func(dst [][]float64) {
						for j := range dst {
							copy(dst[j], cur[j])
						}
					})
				}
				return 0, err
			}
		}
		for j := s.order; j >= 0; j-- {
			if s.a != nil {
				if err := s.a.MatVec(cur[j], next[j]); err != nil {
					return 0, err
				}
			} else {
				// Matrix-free reference: the operator's contract is the
				// CSR accumulation order, so this stays the bitwise oracle.
				s.op.MatVecRange(0, n, cur[j], next[j])
			}
			if j >= 1 {
				for i := 0; i < n; i++ {
					next[j][i] += s.diag1[i] * cur[j-1][i]
				}
			}
			if j >= 2 {
				for i := 0; i < n; i++ {
					next[j][i] += s.diag2[i] * cur[j-2][i]
				}
			}
			if len(s.imp) > 0 {
				for m := 1; m <= j; m++ {
					if err := s.imp[m-1].MatVecAdd(s.coef[m], cur[j-m], next[j]); err != nil {
						return 0, err
					}
				}
			}
		}
		cur, next = next, cur
		for pi := range plans {
			p := &plans[pi]
			if k < p.First || k > p.Last {
				continue
			}
			w := p.Weight[k]
			if w == 0 {
				continue
			}
			for j := 0; j <= s.order; j++ {
				cj := cur[j]
				aj := p.Acc[j]
				for i := 0; i < n; i++ {
					aj[i] += w * cj[i]
				}
			}
		}
	}
	return s.matVecs(gMax - first + 1), nil
}
