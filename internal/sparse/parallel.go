package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the row count above which MatVecAuto fans out; below
// it the goroutine overhead dominates the tridiagonal product.
const parallelThreshold = 16_384

// MatVecParallel computes y = m*x using up to `workers` goroutines over
// contiguous row ranges (workers <= 0 selects GOMAXPROCS). Rows are
// disjoint so no synchronization beyond the final join is needed. x and y
// must not alias.
func (m *CSR) MatVecParallel(x, y []float64, workers int) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("%w: matvec %dx%d with x=%d y=%d", ErrDimensionMismatch, m.rows, m.cols, len(x), len(y))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.rows {
		workers = m.rows
	}
	if workers <= 1 {
		return m.MatVec(x, y)
	}
	var wg sync.WaitGroup
	chunk := (m.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var sum float64
				for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
					sum += m.val[k] * x[m.colIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// MatVecAuto picks the serial or parallel kernel by matrix size. It is the
// product used in the randomization solver's hot loop.
func (m *CSR) MatVecAuto(x, y []float64) error {
	if m.rows >= parallelThreshold {
		return m.MatVecParallel(x, y, 0)
	}
	return m.MatVec(x, y)
}
