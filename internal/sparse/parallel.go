package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the row count below which automatic worker
// selection (workers <= 0) stays serial: spawning and joining goroutines
// costs on the order of a few microseconds, which a sparse product over
// fewer rows than this cannot amortize (a tridiagonal row is ~3 fused
// multiply-adds). Above the threshold the product is memory-bound and
// scales with cores. Callers that know better can force a worker count
// explicitly. The value was chosen from BenchmarkCSRMatVec*100k: at
// 16,384 tridiagonal rows the parallel and serial kernels break even on a
// typical 4-8 core machine.
const parallelThreshold = 16_384

// workersFor is the single worker-selection policy shared by
// MatVecParallel and MatVecAuto:
//
//   - requested <= 0 selects automatically: serial below
//     parallelThreshold rows, GOMAXPROCS otherwise;
//   - an explicit requested count is honored (no threshold), so callers
//     can force parallelism on small matrices;
//   - the result never exceeds rows (a worker needs at least one row).
func workersFor(requested, rows int) int {
	if requested <= 0 {
		if rows < parallelThreshold {
			return 1
		}
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > rows {
		requested = rows
	}
	return requested
}

// MatVecParallel computes y = m*x using up to `workers` goroutines over
// contiguous row ranges (workers <= 0 selects automatically via
// workersFor). Rows are disjoint so no synchronization beyond the final
// join is needed. Per-row sums are accumulated in the same order as the
// serial kernel, so results agree with MatVec bit for bit for every
// worker count. x and y must not alias.
func (m *CSR) MatVecParallel(x, y []float64, workers int) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("%w: matvec %dx%d with x=%d y=%d", ErrDimensionMismatch, m.rows, m.cols, len(x), len(y))
	}
	workers = workersFor(workers, m.rows)
	if workers <= 1 {
		return m.MatVec(x, y)
	}
	var wg sync.WaitGroup
	chunk := (m.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var sum float64
				for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
					sum += m.val[k] * x[m.colIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// MatVecAuto computes y = m*x with automatic worker selection (the same
// policy as MatVecParallel with workers <= 0). It is the product used in
// the randomization solver's hot loop.
func (m *CSR) MatVecAuto(x, y []float64) error {
	return m.MatVecParallel(x, y, 0)
}
