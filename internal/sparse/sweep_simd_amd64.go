//go:build amd64

package sparse

// Go contracts for the AVX2 bodies of the CSR32/QBD fused kernels and
// the shared Poisson accumulation pass (sweep_simd_amd64.s). All three
// replay the corresponding scalar loops' exact per-element operation
// sequence — separate vmulpd/vaddpd steps, +0 seeds, vblendpd coupling
// masks — so their output is bitwise identical to the Go code; see the
// assembly file's header for the full argument.

// csr32Fuse3AVX2 computes n rows of the order-3 interleaved recursion
// over the compact-index CSR: rowPtr is pre-offset to the first row
// (&rowPtr[lo]), col32/val/cur4 are the array bases (columns index cur4
// absolutely), and self/next/d1/d2 are pre-offset to the first row's
// state group, output group and coupling diagonals. Poisson accumulation
// is applied separately (sweepAcc3AVX2) on the stored next values.
//
//go:noescape
func csr32Fuse3AVX2(n int, rowPtr *int, col32 *uint32, val *float64, cur4, self, next, d1, d2 *float64)

// qbd3AVX2 computes nb consecutive full interior QBD blocks of b rows
// each, starting at a block-aligned row r0: bval is &val[r0*3b], win the
// first block's level-window base &cur4[(r0-b)*4], and self/next/d1/d2
// are pre-offset to row r0. Boundary levels and block-partial ranges are
// the caller's responsibility (fuseBlock3QBDAVX2 routes them to the
// scalar kernel).
//
//go:noescape
func qbd3AVX2(nb, b int, bval, win, self, next, d1, d2 *float64)

// sweepAcc3AVX2 applies one plan's Poisson accumulation a_j[i] += w*s_j
// for n rows of the interleaved next buffer (next pre-offset to the
// first row's group, a0..a3 to the planar accumulator rows).
//
//go:noescape
func sweepAcc3AVX2(n int, next, a0, a1, a2, a3 *float64, w float64)
