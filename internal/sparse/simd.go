package sparse

import "os"

// Runtime SIMD dispatch for the fused sweep kernels. On amd64 hosts with
// AVX2 (hasAVX2, detected once via CPUID/XGETBV) the order-3 interleaved
// kernels for the band, CSR32 and QBD formats run assembly bodies that
// replay the scalar loops' exact floating-point operation sequence, so
// every dispatch choice is bitwise identical — the kill-switches below
// exist for A/B measurement and for exercising both paths in tests on
// one machine, never for correctness.

// Sweep kernel labels reported by Sweep.Kernel (and from there
// core.Stats.SweepKernel, the solver-stats JSON and the /metrics
// kernel counters).
const (
	// KernelScalar: the pure-Go loops — no hardware support, a
	// kill-switch, the serial reference sweep, or a run shape without a
	// vector body (planar layouts, wide bands, matrix-free operators).
	KernelScalar = "scalar"
	// KernelAVX2: the AVX2 assembly kernels served the bulk rows (QBD
	// boundary levels and partial tiles still use the scalar loops).
	KernelAVX2 = "avx2"
)

// SIMDAvailable reports whether the running CPU and OS support the AVX2
// sweep kernels. False off amd64 and on amd64 hardware without
// AVX2/OS-enabled YMM state; the kill-switches do not affect it.
func SIMDAvailable() bool { return hasAVX2 }

// simdEnvDisabled reports the process-wide kill-switch: SOMRM_NOSIMD set
// to anything but the empty string or "0" forces the scalar kernels.
// Read at sweep construction (and SetNoSIMD), not per iteration, so
// tests can flip it with t.Setenv.
func simdEnvDisabled() bool {
	v := os.Getenv("SOMRM_NOSIMD")
	return v != "" && v != "0"
}

// SetNoSIMD forces the pure-Go scalar kernels for this sweep when
// disable is true, regardless of hardware support; false restores the
// default dispatch (AVX2 where available, unless SOMRM_NOSIMD is set).
// Bitwise neutral either way.
func (s *Sweep) SetNoSIMD(disable bool) {
	s.nosimd = disable
	s.resolveSIMD()
}

// resolveSIMD computes the effective dispatch gate from hardware support
// and the two kill-switches. Called at construction and from SetNoSIMD.
func (s *Sweep) resolveSIMD() {
	s.simd = hasAVX2 && !s.nosimd && !simdEnvDisabled()
}

// Kernel reports the compute kernel the last Run or RunReference
// dispatched: KernelAVX2 or KernelScalar. Empty before the first run.
func (s *Sweep) Kernel() string { return s.kernel }

// resolveKernel labels the coming run's dispatch: KernelAVX2 exactly
// when the run shape reaches one of the assembly bodies — the
// interleaved order-3 layout on a format with a vector kernel
// (tridiagonal band, non-empty CSR32, or QBD with at least one interior
// level) and the SIMD gate open.
func (s *Sweep) resolveKernel(interleaved bool) string {
	if !interleaved || !s.simd {
		return KernelScalar
	}
	switch s.format {
	case FormatBand:
		if s.band.lo == 1 && s.band.hi == 1 {
			return KernelAVX2
		}
	case FormatCSR32:
		if len(s.a.val) > 0 {
			return KernelAVX2
		}
	case FormatQBD:
		if s.qbd.n >= 3*s.qbd.b {
			return KernelAVX2
		}
	}
	return KernelScalar
}

// accTile3 applies the active Poisson accumulations for rows [t0, t1) of
// the interleaved next buffer; pad4 is the layout's leading padding in
// float64 words (band runs carry lo*4, the others 0). Splitting the
// accumulation pass from the vector kernel is bitwise neutral: each
// a_j[i] += w*s_j sees exactly the fused scalar switch's operands (the
// stored s_j reloads bit-exactly), and only work between different
// (plan, element) pairs is reordered — unobservable in float64.
func (s *Sweep) accTile3(t0, t1 int, next4 []float64, pad4 int, active []accPair) {
	for _, ap := range active {
		sweepAcc3AVX2(t1-t0, &next4[pad4+t0*4], &ap.acc[0][t0], &ap.acc[1][t0], &ap.acc[2][t0], &ap.acc[3][t0], ap.w)
	}
}

// fuseBlock3CompactAVX2 is the AVX2 dispatch of fuseBlock3Compact:
// tiles of s.tile rows run the assembly recursion body, then the
// accumulation passes while the tile's next values are cache-hot. Only
// called with s.simd set and a non-empty matrix.
func (s *Sweep) fuseBlock3CompactAVX2(lo, hi int, cur4, next4 []float64, active []accPair) {
	rowPtr, val := s.a.rowPtr, s.a.val
	col32 := s.col32
	for t0 := lo; t0 < hi; t0 += s.tile {
		t1 := t0 + s.tile
		if t1 > hi {
			t1 = hi
		}
		csr32Fuse3AVX2(t1-t0, &rowPtr[t0], &col32[0], &val[0], &cur4[0], &cur4[t0*4], &next4[t0*4], &s.diag1[t0], &s.diag2[t0])
		s.accTile3(t0, t1, next4, 0, active)
	}
}

// fuseBlock3QBDAVX2 is the AVX2 dispatch of fuseBlock3QBD: the
// block-aligned run of full interior levels inside [lo, hi) goes to the
// assembly body (whose per-level window is a clean strided stream),
// tiled with the accumulation passes like the CSR path; boundary levels
// and block-partial edge rows keep the scalar kernel, which also fuses
// their accumulation. Every row is computed and accumulated exactly
// once, with the reference operation sequence either way.
func (s *Sweep) fuseBlock3QBDAVX2(lo, hi int, cur4, next4 []float64, active []accPair) {
	qb := s.qbd
	b, n := qb.b, qb.n
	ilo, ihi := lo, hi
	if ilo < b {
		ilo = b
	}
	if m := n - b; ihi > m {
		ihi = m
	}
	var alo, ahi int
	if ilo < ihi {
		alo = (ilo + b - 1) / b * b // first whole interior block in range
		ahi = ihi / b * b           // end of the last one
	}
	if alo >= ahi {
		s.fuseBlock3QBD(lo, hi, cur4, next4, active)
		return
	}
	if lo < alo {
		s.fuseBlock3QBD(lo, alo, cur4, next4, active)
	}
	stepRows := s.tile / b * b
	if stepRows < b {
		stepRows = b
	}
	for t0 := alo; t0 < ahi; t0 += stepRows {
		t1 := t0 + stepRows
		if t1 > ahi {
			t1 = ahi
		}
		qbd3AVX2((t1-t0)/b, b, &qb.val[t0*3*b], &cur4[(t0-b)*4], &cur4[t0*4], &next4[t0*4], &s.diag1[t0], &s.diag2[t0])
		s.accTile3(t0, t1, next4, 0, active)
	}
	if ahi < hi {
		s.fuseBlock3QBD(ahi, hi, cur4, next4, active)
	}
}
