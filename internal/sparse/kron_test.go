package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// generatorFixture builds a random generator-like square CSR: sparse
// non-negative off-diagonal rates with the diagonal set to the negated
// float64 row sum, exactly how a CTMC generator's diagonal relates to
// its rates.
func generatorFixture(t testing.TB, rng *rand.Rand, n int) *CSR {
	t.Helper()
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64() * math.Pow(10, float64(rng.Intn(5)-2))
			rowSum += v
			if err := b.Add(i, j, v); err != nil {
				t.Fatal(err)
			}
		}
		if rowSum != 0 {
			if err := b.Add(i, i, -rowSum); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

// kronPairProduct materializes the Kronecker sum of two square matrices
// the way core.Compose builds the joint generator: per product row, the
// x-factor entries then the y-factor entries, with the builder merging
// the duplicate diagonal contributions in Add order.
func kronPairProduct(t testing.TB, x, y *CSR) *CSR {
	t.Helper()
	nx, ny := x.Rows(), y.Rows()
	n := nx * ny
	b := NewBuilder(n, n)
	add := func(r, c int, v float64) {
		if v != 0 {
			if err := b.Add(r, c, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			row := i*ny + j
			x.Range(i, func(k int, v float64) {
				add(row, k*ny+j, v)
			})
			y.Range(j, func(l int, v float64) {
				add(row, i*ny+l, v)
			})
		}
	}
	return b.Build()
}

// kronMaterialize evaluates a fold program over materialized pairwise
// Kronecker-sum products, and in parallel folds the per-factor maximum
// exit rates into the product uniformization rate — the explicit-matrix
// mirror of what KronSum streams.
func kronMaterialize(t testing.TB, factors []*CSR, fold []byte) (prod *CSR, q float64) {
	t.Helper()
	var mats []*CSR
	var qs []float64
	next := 0
	for _, op := range fold {
		if op == KronFoldPush {
			m := factors[next]
			next++
			var mq float64
			for i := 0; i < m.Rows(); i++ {
				if e := -m.At(i, i); e > mq {
					mq = e
				}
			}
			mats = append(mats, m)
			qs = append(qs, mq)
			continue
		}
		d := len(mats)
		mats[d-2] = kronPairProduct(t, mats[d-2], mats[d-1])
		qs[d-2] = qs[d-2] + qs[d-1]
		mats, qs = mats[:d-1], qs[:d-1]
	}
	return mats[0], qs[0]
}

// uniformizedRef builds the materialized uniformized operator
// Q/q + I via the same Scaled + AddDiagonal sequence ctmc.Uniformized
// performs — the bitwise reference KronSum must reproduce.
func uniformizedRef(t testing.TB, m *CSR, q float64) *CSR {
	t.Helper()
	scaled := m.Scaled(1 / q)
	ones := make([]float64, m.Rows())
	for i := range ones {
		ones[i] = 1
	}
	u, err := scaled.AddDiagonal(ones)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// foldPrograms returns the two tree shapes of three factors: the left
// fold ((1+2)+3) and the right fold (1+(2+3)). Their diagonal float
// sums differ in general; KronSum must honor whichever shape it is
// given.
func foldPrograms(factors int) [][]byte {
	left := []byte{KronFoldPush}
	for i := 1; i < factors; i++ {
		left = append(left, KronFoldPush, KronFoldAdd)
	}
	if factors < 3 {
		return [][]byte{left}
	}
	right := make([]byte, 0, 2*factors-1)
	for i := 0; i < factors; i++ {
		right = append(right, KronFoldPush)
	}
	for i := 1; i < factors; i++ {
		right = append(right, KronFoldAdd)
	}
	return [][]byte{left, right}
}

// TestKronSumMatVecBitwise checks the heart of the matrix-free engine:
// the KronSum apply is bitwise identical to the materialized uniformized
// product CSR, for 2- and 3-factor products under both fold-tree shapes,
// on arbitrary finite vectors and arbitrary row ranges.
func TestKronSumMatVecBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 40; trial++ {
		nf := 2 + rng.Intn(2)
		factors := make([]*CSR, nf)
		for fi := range factors {
			factors[fi] = generatorFixture(t, rng, 2+rng.Intn(6))
		}
		for _, fold := range foldPrograms(nf) {
			prod, q := kronMaterialize(t, factors, fold)
			if q == 0 {
				continue // frozen chain; the solver never builds a KronSum
			}
			ref := uniformizedRef(t, prod, q)
			ks, err := NewKronSum(factors, fold, q)
			if err != nil {
				t.Fatal(err)
			}
			n := ks.Rows()
			if n != prod.Rows() {
				t.Fatalf("trial %d: kron rows %d != product rows %d", trial, n, prod.Rows())
			}
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
			want := make([]float64, n)
			if err := ref.MatVec(x, want); err != nil {
				t.Fatal(err)
			}
			got := make([]float64, n)
			ks.MatVecRange(0, n, x, got)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("trial %d: MatVecRange[%d] = %x, want %x", trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
			// A partial range must fill exactly [lo, hi) with the same bits.
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)
			part := make([]float64, n)
			for i := range part {
				part[i] = math.NaN()
			}
			ks.MatVecRange(lo, hi, x, part)
			for i := lo; i < hi; i++ {
				if math.Float64bits(part[i]) != math.Float64bits(want[i]) {
					t.Fatalf("trial %d: partial[%d] mismatch", trial, i)
				}
			}
			for i := 0; i < lo; i++ {
				if !math.IsNaN(part[i]) {
					t.Fatalf("trial %d: partial range wrote outside [lo,hi) at %d", trial, i)
				}
			}
		}
	}
}

// TestKronSumIndexConvention pins the product-state index convention
// i*nb+j with literal factors and a pinned vector, so the layout can
// never silently flip. Factor A (2 states) moves 0->1 at rate 2; factor
// B (3 states) moves 0->1 at rate 4. In the product, A's transition maps
// state (0,j) = j to state (1,j) = 3+j — stride nb = 3 — and B's maps
// (i,0) = 3i to (i,1) = 3i+1 — stride 1.
func TestKronSumIndexConvention(t *testing.T) {
	ba := NewBuilder(2, 2)
	if err := ba.Add(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := ba.Add(0, 0, -2); err != nil {
		t.Fatal(err)
	}
	a := ba.Build()
	bb := NewBuilder(3, 3)
	if err := bb.Add(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := bb.Add(0, 0, -4); err != nil {
		t.Fatal(err)
	}
	b := bb.Build()

	const q = 8.0 // power of two: /q and the diagonal fold are exact
	ks, err := NewKronSum([]*CSR{a, b}, nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := ks.Dims(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Dims() = %v, want [2 3]", got)
	}
	// x[s] = s makes every gather identify its source index: the operator
	// is A' = (Q_a (+) Q_b)/8 + I, so row 0 = state (0,0) reads
	// 2/8·x[3] (A's move to (1,0)) + 4/8·x[1] (B's move to (0,1))
	// + (1 - 6/8)·x[0].
	x := []float64{0, 1, 2, 3, 4, 5}
	y := make([]float64, 6)
	ks.MatVecRange(0, 6, x, y)
	want := []float64{
		0.25*3 + 0.5*1 + 0.25*0, // (0,0): A-step to 3, B-step to 1, diag 1-6/8
		0.25*4 + 0.75*1,         // (0,1): A-step to (1,1)=4, diag 1-2/8; B row 1 empty
		0.25*5 + 0.75*2,         // (0,2): A-step to (1,2)=5, diag 1-2/8
		0.5*4 + 0.5*3,           // (1,0): B-step to (1,1)=4, diag 1-4/8
		1 * 4,                   // (1,1): diagonal only
		1 * 5,                   // (1,2): diagonal only
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %g, want %g (index convention i*nb+j violated?)", i, y[i], want[i])
		}
	}
}

// TestKronSumConstruction exercises the validation and accounting paths.
func TestKronSumConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := generatorFixture(t, rng, 4)
	b := generatorFixture(t, rng, 5)

	if _, err := NewKronSum(nil, nil, 1); err == nil {
		t.Error("empty factor list accepted")
	}
	if _, err := NewKronSum([]*CSR{a, b}, nil, 0); err == nil {
		t.Error("zero uniformization rate accepted")
	}
	if _, err := NewKronSum([]*CSR{a, NewBuilder(2, 3).Build()}, nil, 1); err == nil {
		t.Error("non-square factor accepted")
	}
	if _, err := NewKronSum([]*CSR{a, b}, []byte{KronFoldPush}, 1); err == nil {
		t.Error("fold with missing pushes accepted")
	}
	if _, err := NewKronSum([]*CSR{a, b}, []byte{KronFoldPush, KronFoldAdd, KronFoldPush}, 1); err == nil {
		t.Error("fold with stack underflow accepted")
	}
	if _, err := NewKronSum([]*CSR{a, b}, []byte{KronFoldPush, KronFoldPush, 7}, 1); err == nil {
		t.Error("unknown fold opcode accepted")
	}
	many := make([]*CSR, MaxKronFactors+1)
	for i := range many {
		many[i] = generatorFixture(t, rng, 2)
	}
	if _, err := NewKronSum(many, nil, 1); err == nil {
		t.Error("factor count beyond MaxKronFactors accepted")
	}

	ks, err := NewKronSum([]*CSR{a, b}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Rows() != 20 || ks.Factors() != 2 {
		t.Fatalf("Rows/Factors = %d/%d, want 20/2", ks.Rows(), ks.Factors())
	}
	if ks.OpFormat() != FormatKron {
		t.Fatalf("OpFormat = %q", ks.OpFormat())
	}
	// The memory footprint is bounded by the factor sizes, not the
	// product: generous constant x Σ (n_f + nnz_f) x 8 bytes.
	sum := int64(0)
	for _, m := range []*CSR{a, b} {
		sum += int64(m.Rows() + m.NNZ())
	}
	if mb := ks.MemoryBytes(); mb > 6*8*sum {
		t.Fatalf("MemoryBytes = %d, want O(sum of factors) <= %d", mb, 6*8*sum)
	}
	// RowCost sums to OpNNZ plus rowBase-free diagonal accounting: every
	// row charges its off-diagonal entries plus 1.
	var total int64
	for i := 0; i < ks.Rows(); i++ {
		total += ks.RowCost(i)
	}
	if total != ks.OpNNZ() {
		t.Fatalf("sum RowCost = %d, OpNNZ = %d", total, ks.OpNNZ())
	}
}

// FuzzKronSumMatVec drives the matrix-free apply from fuzzed factor
// shapes and seeds: whatever the factor structure, fold shape and
// vector, KronSum must reproduce the materialized uniformized product
// CSR bit for bit — including the summed diagonal terms.
func FuzzKronSumMatVec(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(0), false)
	f.Add(int64(2), uint8(2), uint8(2), uint8(2), true)
	f.Add(int64(3), uint8(7), uint8(5), uint8(3), false)
	f.Add(int64(4), uint8(1), uint8(9), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, naRaw, nbRaw, ncRaw uint8, rightFold bool) {
		rng := rand.New(rand.NewSource(seed))
		factors := []*CSR{
			generatorFixture(t, rng, 1+int(naRaw)%10),
			generatorFixture(t, rng, 1+int(nbRaw)%10),
		}
		if ncRaw > 0 {
			factors = append(factors, generatorFixture(t, rng, 1+int(ncRaw)%10))
		}
		progs := foldPrograms(len(factors))
		fold := progs[0]
		if rightFold && len(progs) > 1 {
			fold = progs[1]
		}
		prod, q := kronMaterialize(t, factors, fold)
		if q == 0 {
			t.Skip("frozen chain")
		}
		ref := uniformizedRef(t, prod, q)
		ks, err := NewKronSum(factors, fold, q)
		if err != nil {
			t.Fatal(err)
		}
		n := ks.Rows()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		if err := ref.MatVec(x, want); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		ks.MatVecRange(0, n, x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("MatVecRange[%d] = %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}
