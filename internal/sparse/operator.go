package sparse

// Operator is the matrix-free interface the randomization sweep streams:
// a square linear operator exposed as row-range matrix-vector products.
// It is what lets the sweep run over generators that are never stored
// explicitly (the Kronecker-sum operator of composed models applies the
// product-space generator from its factor matrices in O(sum of factor
// sizes) memory instead of O(product)).
//
// Bitwise contract: MatVecRange must accumulate each row's entries in
// ascending column order into a sum started at +0.0 — exactly the
// operation sequence of CSR.MatVec — so that operator-backed sweeps are
// bitwise interchangeable with the materialized CSR reference whenever
// the materialized matrix exists. Implementations may add entries whose
// value is exactly ±0.0 (padding, vanished diagonals): in round-to-nearest
// a running sum seeded at +0.0 can never become -0.0 (a+b is -0.0 only
// when both operands are -0.0; exact cancellation yields +0.0), and
// adding ±0.0 to any value other than -0.0 returns it unchanged, so such
// products are bitwise neutral for every finite input vector (see
// band.go for the original derivation).
type Operator interface {
	// Rows returns the operator dimension (the operator is square).
	Rows() int
	// OpNNZ returns the effective stored-entry count — what the
	// materialized matrix's NNZ() would report — used for flop accounting
	// and work partitioning. Implementations without an explicit entry
	// array return their best exact or near-exact count.
	OpNNZ() int64
	// OpFormat identifies the operator's storage format (what
	// Sweep.Format and core.Stats.MatrixFormat report).
	OpFormat() MatrixFormat
	// MatVecRange computes y[i] = (A·x)[i] for lo <= i < hi, leaving
	// y outside [lo, hi) untouched. len(x) and len(y) must be Rows().
	MatVecRange(lo, hi int, x, y []float64)
	// RowCost returns the work of row i in matrix entries — the weight
	// the sweep's nnz-balanced row partitioner charges the row, replacing
	// the rowPtr[i+1]-rowPtr[i] lookup of explicit formats.
	RowCost(i int) int64
}

// csrOperator adapts an explicit CSR matrix to the Operator interface.
// The sweep keeps dedicated kernels for its concrete formats; this
// adapter exists so generic operator consumers (tests, reference
// streaming) can treat explicit and matrix-free storage uniformly.
type csrOperator struct{ m *CSR }

// AsOperator wraps an explicit square CSR matrix as an Operator.
func AsOperator(m *CSR) Operator { return csrOperator{m} }

func (o csrOperator) Rows() int              { return o.m.rows }
func (o csrOperator) OpNNZ() int64           { return int64(o.m.NNZ()) }
func (o csrOperator) OpFormat() MatrixFormat { return FormatCSR64 }

func (o csrOperator) MatVecRange(lo, hi int, x, y []float64) {
	rowPtr, colIdx, val := o.m.rowPtr, o.m.colIdx, o.m.val
	for i := lo; i < hi; i++ {
		var sum float64
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			sum += val[p] * x[colIdx[p]]
		}
		y[i] = sum
	}
}

func (o csrOperator) RowCost(i int) int64 {
	return int64(o.m.rowPtr[i+1] - o.m.rowPtr[i])
}
