//go:build !amd64

package sparse

// Stubs for the AVX2 sweep kernels off amd64. hasAVX2 is constant false
// there (band_simd_other.go), Sweep.simd can therefore never be set, and
// the compiler removes the dispatch branches — these bodies exist only
// so the package compiles on every GOARCH.

func csr32Fuse3AVX2(n int, rowPtr *int, col32 *uint32, val *float64, cur4, self, next, d1, d2 *float64) {
	panic("sparse: csr32Fuse3AVX2 called without AVX2 support")
}

func qbd3AVX2(nb, b int, bval, win, self, next, d1, d2 *float64) {
	panic("sparse: qbd3AVX2 called without AVX2 support")
}

func sweepAcc3AVX2(n int, next, a0, a1, a2, a3 *float64, w float64) {
	panic("sparse: sweepAcc3AVX2 called without AVX2 support")
}
