package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildKnown(t *testing.T) *CSR {
	t.Helper()
	b := NewBuilder(3, 3)
	entries := []Triplet{
		{0, 0, 1}, {0, 2, 2},
		{1, 1, 3},
		{2, 0, 4}, {2, 1, 5}, {2, 2, 6},
	}
	for _, e := range entries {
		if err := b.Add(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderAndAt(t *testing.T) {
	m := buildKnown(t)
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", m.NNZ())
	}
	cases := []struct {
		i, j int
		want float64
	}{{0, 0, 1}, {0, 1, 0}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 6}}
	for _, c := range cases {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
	}
}

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder(2, 2)
	_ = b.Add(0, 1, 1.5)
	_ = b.Add(0, 1, 2.5)
	m := b.Build()
	if got := m.At(0, 1); got != 4 {
		t.Errorf("duplicate sum = %g, want 4", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestBuilderDuplicateCancellationDropped(t *testing.T) {
	b := NewBuilder(1, 1)
	_ = b.Add(0, 0, 1)
	_ = b.Add(0, 0, -1)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Errorf("cancelled entry kept: NNZ = %d", m.NNZ())
	}
}

// TestBuilderDuplicateCoalescingOrder pins the FP summation order of
// duplicate triplets: Build sums them in Add order (sort.SliceStable), a
// determinism guarantee that is observable when the additions don't
// commute in float64. (1e16 + 1) + (-1e16) = 0 while (1e16 + -1e16) + 1
// = 1, so any reordering flips the stored value.
func TestBuilderDuplicateCoalescingOrder(t *testing.T) {
	b := NewBuilder(1, 1)
	_ = b.Add(0, 0, 1e16)
	_ = b.Add(0, 0, 1)
	_ = b.Add(0, 0, -1e16)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Fatalf("Add-order sum (1e16 + 1) + -1e16 should cancel exactly; got NNZ=%d val=%g", m.NNZ(), m.At(0, 0))
	}

	b2 := NewBuilder(1, 1)
	_ = b2.Add(0, 0, 1e16)
	_ = b2.Add(0, 0, -1e16)
	_ = b2.Add(0, 0, 1)
	if got := b2.Build().At(0, 0); got != 1 {
		t.Fatalf("Add-order sum (1e16 + -1e16) + 1 = %g, want 1", got)
	}
}

// TestBuilderEmptyRows covers rows (and a whole matrix) without entries:
// the rowPtr structure must stay consistent and every op must treat the
// rows as zero.
func TestBuilderEmptyRows(t *testing.T) {
	b := NewBuilder(4, 3)
	_ = b.Add(1, 0, 2)
	_ = b.Add(1, 2, 3)
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	for _, i := range []int{0, 2, 3} {
		if m.rowPtr[i+1] != m.rowPtr[i] && i != 1 {
			t.Errorf("empty row %d has entries", i)
		}
		m.Range(i, func(j int, v float64) {
			t.Errorf("empty row %d yielded (%d, %g)", i, j, v)
		})
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %g on empty row", i, j, m.At(i, j))
			}
		}
	}
	y := make([]float64, 4)
	if err := m.MatVec([]float64{1, 1, 1}, y); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 0, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}

	empty := NewBuilder(3, 3).Build()
	if empty.NNZ() != 0 {
		t.Fatalf("empty build NNZ = %d", empty.NNZ())
	}
	if sums := empty.RowSums(); sums[0] != 0 || sums[1] != 0 || sums[2] != 0 {
		t.Errorf("empty RowSums = %v", sums)
	}
	if !empty.IsSubstochastic(0) {
		t.Error("empty matrix not substochastic")
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	b := NewBuilder(2, 2)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if err := b.Add(c[0], c[1], 1); !errors.Is(err, ErrBadTriplet) {
			t.Errorf("Add(%d,%d): err = %v, want ErrBadTriplet", c[0], c[1], err)
		}
	}
}

func TestBuilderZeroSkipped(t *testing.T) {
	b := NewBuilder(2, 2)
	_ = b.Add(0, 0, 0)
	if m := b.Build(); m.NNZ() != 0 {
		t.Errorf("zero entry stored")
	}
}

func TestMatVecKnown(t *testing.T) {
	m := buildKnown(t)
	y := make([]float64, 3)
	if err := m.MatVec([]float64{1, 2, 3}, y); err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 6, 32}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestMatVecAdd(t *testing.T) {
	m := buildKnown(t)
	y := []float64{1, 1, 1}
	if err := m.MatVecAdd(2, []float64{1, 2, 3}, y); err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 13, 65}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	// a=0 must be a no-op.
	before := append([]float64(nil), y...)
	if err := m.MatVecAdd(0, []float64{9, 9, 9}, y); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != before[i] {
			t.Error("MatVecAdd with a=0 modified y")
		}
	}
}

func TestVecMatKnown(t *testing.T) {
	m := buildKnown(t)
	y := make([]float64, 3)
	if err := m.VecMat([]float64{1, 2, 3}, y); err != nil {
		t.Fatal(err)
	}
	want := []float64{13, 21, 20}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestDimensionErrors(t *testing.T) {
	m := buildKnown(t)
	if err := m.MatVec(make([]float64, 2), make([]float64, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MatVec: %v", err)
	}
	if err := m.MatVecAdd(1, make([]float64, 3), make([]float64, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MatVecAdd: %v", err)
	}
	if err := m.VecMat(make([]float64, 2), make([]float64, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("VecMat: %v", err)
	}
	if _, err := m.AddDiagonal(make([]float64, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddDiagonal: %v", err)
	}
	if _, err := NewCSRFromDense(2, 2, make([]float64, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("NewCSRFromDense: %v", err)
	}
}

func TestScaledAndRowSums(t *testing.T) {
	m := buildKnown(t)
	s := m.Scaled(0.5)
	if got := s.At(2, 2); got != 3 {
		t.Errorf("Scaled At(2,2) = %g, want 3", got)
	}
	// Original untouched.
	if got := m.At(2, 2); got != 6 {
		t.Errorf("Scaled mutated receiver")
	}
	sums := m.RowSums()
	want := []float64{3, 3, 15}
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("RowSums[%d] = %g, want %g", i, sums[i], want[i])
		}
	}
}

func TestAddDiagonal(t *testing.T) {
	m := buildKnown(t)
	d, err := m.AddDiagonal([]float64{10, 0, -6})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.At(0, 0); got != 11 {
		t.Errorf("At(0,0) = %g, want 11", got)
	}
	if got := d.At(1, 1); got != 3 {
		t.Errorf("At(1,1) = %g, want 3", got)
	}
	if got := d.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %g, want 0", got)
	}
}

func TestIsSubstochastic(t *testing.T) {
	b := NewBuilder(2, 2)
	_ = b.Add(0, 0, 0.5)
	_ = b.Add(0, 1, 0.5)
	_ = b.Add(1, 0, 0.25)
	m := b.Build()
	if !m.IsSubstochastic(1e-12) {
		t.Error("stochastic/substochastic matrix rejected")
	}
	b2 := NewBuilder(1, 1)
	_ = b2.Add(0, 0, 1.1)
	if b2.Build().IsSubstochastic(1e-12) {
		t.Error("row sum > 1 accepted")
	}
	b3 := NewBuilder(1, 2)
	_ = b3.Add(0, 0, -0.1)
	_ = b3.Add(0, 1, 0.5)
	if b3.Build().IsSubstochastic(1e-12) {
		t.Error("negative entry accepted")
	}
}

func TestDenseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		data := make([]float64, rows*cols)
		for i := range data {
			if rng.Float64() < 0.5 {
				data[i] = math.Round(rng.NormFloat64()*10) / 4
			}
		}
		m, err := NewCSRFromDense(rows, cols, data)
		if err != nil {
			return false
		}
		back := m.Dense()
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CSR MatVec agrees with a naive dense multiply.
func TestMatVecMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		data := make([]float64, rows*cols)
		for i := range data {
			if rng.Float64() < 0.4 {
				data[i] = rng.NormFloat64()
			}
		}
		m, err := NewCSRFromDense(rows, cols, data)
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, rows)
		if err := m.MatVec(x, y); err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += data[i*cols+j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	m := buildKnown(t)
	var cols []int
	var vals []float64
	m.Range(2, func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	})
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 1 || cols[2] != 2 {
		t.Errorf("Range cols = %v", cols)
	}
	if vals[0] != 4 || vals[1] != 5 || vals[2] != 6 {
		t.Errorf("Range vals = %v", vals)
	}
}
