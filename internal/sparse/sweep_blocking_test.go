package sparse

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// blockedAccEqual compares two plan sets' accumulators bit for bit.
func blockedAccEqual(t *testing.T, tag string, got, want []SweepPlan, order, n int) {
	t.Helper()
	for pi := range want {
		for j := 0; j <= order; j++ {
			for i := 0; i < n; i++ {
				g, w := got[pi].Acc[j][i], want[pi].Acc[j][i]
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("%s: plan %d acc[%d][%d] = %x, reference %x",
						tag, pi, j, i, math.Float64bits(g), math.Float64bits(w))
				}
			}
		}
	}
}

// TestSweepTemporalBlockingBitwise is the temporal-blocking bitwise gate:
// for banded and block-tridiagonal order-3 families, every temporal block
// depth × spatial tile × worker count × format must reproduce the serial
// reference sweep bit for bit — including ragged final groups (gMax not
// divisible by T) and wavefront-parallel schedules with more blocks than
// workers.
func TestSweepTemporalBlockingBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	type fixture struct {
		name    string
		a       *CSR
		d1, d2  []float64
		formats []MatrixFormat
	}
	for trial := 0; trial < 4; trial++ {
		n := 40 + rng.Intn(80)
		lo, hi := 1+rng.Intn(3), 1+rng.Intn(3)
		a, d1, d2 := bandedSweepFixture(t, rng, n, lo, hi, 3)
		qn := 4 * (10 + rng.Intn(8))
		q := qbdFixture(t, rng, qn/4, 4)
		qd1, qd2 := make([]float64, qn), make([]float64, qn)
		for i := range qd1 {
			qd1[i] = rng.Float64()*2 - 1
			qd2[i] = rng.Float64()
		}
		fixtures := []fixture{
			{"band", a, d1, d2, []MatrixFormat{FormatAuto, FormatBand, FormatCSR, FormatCSR64}},
			{"qbd", q, qd1, qd2, []MatrixFormat{FormatQBD}},
		}
		gMax := 5 + rng.Intn(11) // 5..15: ragged against every T below
		weights := make([][]float64, 2)
		firsts, lasts := make([]int, 2), make([]int, 2)
		for pi := range weights {
			w := make([]float64, gMax+1)
			for k := range w {
				w[k] = rng.Float64()
			}
			weights[pi] = w
			firsts[pi] = rng.Intn(gMax)
			lasts[pi] = firsts[pi] + rng.Intn(gMax+1-firsts[pi])
		}

		for _, fx := range fixtures {
			rows := len(fx.d1)
			ref, err := NewSweep(fx.a, fx.d1, fx.d2, nil, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			refCur, refNext, refPlans := newRunState(ref, weights, firsts, lasts)
			refMV, err := ref.RunReference(context.Background(), gMax, refCur, refNext, refPlans, 32)
			if err != nil {
				t.Fatal(err)
			}

			for _, format := range fx.formats {
				for _, tb := range []int{2, 3, 4, 8} {
					for _, tile := range []int{8, 32} {
						for _, workers := range []int{1, 2, 3, 8} {
							fs, err := NewSweepWithFormat(fx.a, fx.d1, fx.d2, nil, 3, workers, format)
							if err != nil {
								t.Fatal(err)
							}
							fs.SetSweepTile(tile)
							fs.SetTemporalBlock(tb)
							cur, next, plans := newRunState(fs, weights, firsts, lasts)
							mv, err := fs.Run(context.Background(), gMax, cur, next, plans, 32)
							if err != nil {
								t.Fatalf("trial %d %s %q T=%d tile=%d w=%d: %v",
									trial, fx.name, format, tb, tile, workers, err)
							}
							if mv != refMV {
								t.Fatalf("trial %d %s %q T=%d tile=%d w=%d: matvecs %d != reference %d",
									trial, fx.name, format, tb, tile, workers, mv, refMV)
							}
							if got := fs.TemporalBlock(); got != tb {
								t.Fatalf("trial %d %s %q T=%d: resolved depth %d", trial, fx.name, format, tb, got)
							}
							tag := fx.name + "/" + string(format)
							blockedAccEqual(t, tag, plans, refPlans, 3, rows)
						}
					}
				}
			}
		}
	}
}

// TestSweepTemporalBlockingResume is the checkpoint gate under blocking:
// a blocked sweep interrupted at every group boundary and resumed — in
// blocked or unblocked mode — must reproduce the uninterrupted run bit
// for bit, and tokens captured by an unblocked sweep must resume under
// blocking. Group boundaries are the only barriers a blocked run
// observes, so completed counts must land on multiples of T.
func TestSweepTemporalBlockingResume(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	const order, T = 3, 3
	for trial := 0; trial < 3; trial++ {
		n := 30 + rng.Intn(50)
		a, d1, d2 := bandedSweepFixture(t, rng, n, 1, 2, order)
		gMax := 7 + rng.Intn(8)
		w := make([]float64, gMax+1)
		for k := range w {
			w[k] = rng.Float64()
		}
		weights := [][]float64{w}
		firsts, lasts := []int{0}, []int{gMax}

		mk := func(workers, tblock int) *Sweep {
			s, err := NewSweep(a, d1, d2, nil, order, workers)
			if err != nil {
				t.Fatal(err)
			}
			s.SetSweepTile(8)
			s.SetTemporalBlock(tblock)
			return s
		}

		full := mk(1, T)
		fullCur, fullNext, fullPlans := newRunState(full, weights, firsts, lasts)
		fullMV, err := full.Run(context.Background(), gMax, fullCur, fullNext, fullPlans, 1)
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 3} {
			// polls = p interrupts a blocked run at its p-th group boundary:
			// completed = (p-1)·T iterations.
			for polls := 1; (polls-1)*T < gMax; polls++ {
				for _, resumeBlocked := range []bool{true, false} {
					rs := mk(workers, T)
					var completed = -1
					state := make([][]float64, order+1)
					for j := range state {
						state[j] = make([]float64, n)
					}
					rs.SetInterruptHook(func(done int, export func([][]float64)) {
						completed = done
						export(state)
					})
					cur, next, plans := newRunState(rs, weights, firsts, lasts)
					ctx := &countdownCtx{Context: context.Background(), polls: polls - 1}
					if _, err := rs.Run(ctx, gMax, cur, next, plans, 1); err == nil {
						t.Fatalf("trial %d w=%d polls %d: blocked run was not interrupted", trial, workers, polls)
					}
					if completed != (polls-1)*T {
						t.Fatalf("trial %d w=%d polls %d: completed = %d, want group boundary %d",
							trial, workers, polls, completed, (polls-1)*T)
					}
					cont := mk(workers, T)
					if !resumeBlocked {
						cont = mk(workers, 1) // cross-mode: blocked token, unblocked resume
					}
					for j := range state {
						copy(cur[j], state[j])
					}
					mv, err := cont.RunFrom(context.Background(), completed+1, gMax, cur, next, plans, 1)
					if err != nil {
						t.Fatalf("trial %d w=%d polls %d blocked=%v: resume: %v", trial, workers, polls, resumeBlocked, err)
					}
					if want := fullMV - cont.matVecs(completed); mv != want {
						t.Fatalf("trial %d w=%d polls %d: resumed matvecs %d, want %d", trial, workers, polls, mv, want)
					}
					blockedAccEqual(t, "resume", plans, fullPlans, order, n)
				}
			}

			// The reverse direction: a token captured by an unblocked sweep
			// (arbitrary iteration barrier, not a group multiple) must resume
			// under blocking with re-based groups.
			for _, polls := range []int{2, gMax / 2, gMax} {
				us := mk(workers, 1)
				var completed = -1
				state := make([][]float64, order+1)
				for j := range state {
					state[j] = make([]float64, n)
				}
				us.SetInterruptHook(func(done int, export func([][]float64)) {
					completed = done
					export(state)
				})
				cur, next, plans := newRunState(us, weights, firsts, lasts)
				ctx := &countdownCtx{Context: context.Background(), polls: polls - 1}
				if _, err := us.Run(ctx, gMax, cur, next, plans, 1); err == nil {
					t.Fatalf("trial %d w=%d polls %d: unblocked run was not interrupted", trial, workers, polls)
				}
				cont := mk(workers, T)
				for j := range state {
					copy(cur[j], state[j])
				}
				if _, err := cont.RunFrom(context.Background(), completed+1, gMax, cur, next, plans, 1); err != nil {
					t.Fatalf("trial %d w=%d polls %d: blocked resume of unblocked token: %v", trial, workers, polls, err)
				}
				blockedAccEqual(t, "cross-resume", plans, fullPlans, order, n)
			}
		}
	}
}

// TestTemporalBlockResolution pins the blocking policy: what shapes block
// automatically, how forced depths and the width floor resolve, and which
// shapes never block.
func TestTemporalBlockResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	tri, d1, d2 := bandedSweepFixture(t, rng, 300, 1, 1, 3)
	s, err := NewSweep(tri, d1, d2, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Auto leaves small states unblocked: both buffers already fit in cache.
	if T, _, _ := s.resolveBlocking(); T != 1 {
		t.Errorf("auto on small state resolved T=%d, want 1", T)
	}
	// Off switches.
	for _, off := range []int{1, -3} {
		s.SetTemporalBlock(off)
		if T, _, _ := s.resolveBlocking(); T != 1 {
			t.Errorf("tblock=%d resolved T=%d, want 1", off, T)
		}
	}
	// Forced depths are honored regardless of size, with the width floor
	// W >= 2·skew enforced over any caller tile.
	s.SetTemporalBlock(4)
	if T, W, skew := s.resolveBlocking(); T != 4 || skew != 1 || W != sweepTileDefault {
		t.Errorf("forced resolved (T=%d, W=%d, skew=%d), want (4, %d, 1)", T, W, skew, sweepTileDefault)
	}
	s.SetSweepTile(1)
	if _, W, _ := s.resolveBlocking(); W != 2 {
		t.Errorf("tile=1 skew=1 resolved W=%d, want floor 2", W)
	}
	// Requested depths clamp at maxTemporalBlock.
	s.SetTemporalBlock(maxTemporalBlock + 10)
	if T, _, _ := s.resolveBlocking(); T != maxTemporalBlock {
		t.Errorf("oversized request resolved T=%d, want %d", T, maxTemporalBlock)
	}

	// Auto blocks large banded states, clamped so the halo shift stays
	// under half a block.
	big := bandedFixture(t, rng, temporalBlockMinWords/8, 1, 1)
	bd1, bd2 := make([]float64, big.rows), make([]float64, big.rows)
	bs, err := NewSweep(big, bd1, bd2, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if T, W, skew := bs.resolveBlocking(); T != temporalBlockDefault || W != sweepTileDefault || skew != 1 {
		t.Errorf("auto on large state resolved (T=%d, W=%d, skew=%d), want (%d, %d, 1)",
			T, W, skew, temporalBlockDefault, sweepTileDefault)
	}

	// The CSR32 auto policy splits on the dispatched kernel (re-measured
	// for PR 10, see BENCHMARKS.md): the scalar kernel is index- not
	// DRAM-bound and never auto-blocks (blocking measured 12-29% slower),
	// while the AVX2 kernel is memory-bound like the band kernel and
	// auto-blocks (~22% faster) up to the measured skew ceiling. A forced
	// depth engages either way.
	cs, err := NewSweepWithFormat(big, bd1, bd2, nil, 3, 1, FormatCSR)
	if err != nil {
		t.Fatal(err)
	}
	if SIMDAvailable() {
		if T, _, _ := cs.resolveBlocking(); T != temporalBlockDefault {
			t.Errorf("auto on large CSR state (SIMD) resolved T=%d, want %d", T, temporalBlockDefault)
		}
	}
	cs.SetNoSIMD(true)
	if T, _, _ := cs.resolveBlocking(); T != 1 {
		t.Errorf("auto on large CSR state (scalar) resolved T=%d, want 1", T)
	}
	cs.SetTemporalBlock(4)
	if T, _, _ := cs.resolveBlocking(); T != 4 {
		t.Errorf("forced depth on CSR resolved T=%d, want 4", T)
	}
	// A reach beyond the measured ceiling keeps the SIMD auto policy
	// unblocked too.
	cs.SetNoSIMD(false)
	cs.SetTemporalBlock(0)
	wide := bandedFixture(t, rng, temporalBlockMinWords/8, csrAutoBlockMaxSkew+1, 1)
	ws, err := NewSweepWithFormat(wide, bd1, bd2, nil, 3, 1, FormatCSR)
	if err != nil {
		t.Fatal(err)
	}
	if T, _, _ := ws.resolveBlocking(); T != 1 {
		t.Errorf("auto on wide-band CSR state resolved T=%d, want 1", T)
	}

	// Kronecker-sum sweeps have unbounded reach and never block, even when
	// forced.
	ks, err := NewKronSum([]*CSR{generatorFixture(t, rng, 5), generatorFixture(t, rng, 7)}, nil, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	kd1, kd2 := make([]float64, ks.Rows()), make([]float64, ks.Rows())
	kos, err := NewSweepOperator(ks, kd1, kd2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	kos.SetTemporalBlock(8)
	if T, _, _ := kos.resolveBlocking(); T != 1 {
		t.Errorf("kron resolved T=%d, want 1", T)
	}

	// Planar shapes (no interleaved kernel) never block: a forced depth on
	// an order-2 run must still report an unblocked sweep.
	ps, err := NewSweep(tri, d1, d2, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps.SetTemporalBlock(8)
	gMax := 6
	w := make([]float64, gMax+1)
	for k := range w {
		w[k] = rng.Float64()
	}
	cur, next, plans := newRunState(ps, [][]float64{w}, []int{0}, []int{gMax})
	if _, err := ps.Run(context.Background(), gMax, cur, next, plans, 32); err != nil {
		t.Fatal(err)
	}
	if got := ps.TemporalBlock(); got != 1 {
		t.Errorf("planar run resolved depth %d, want 1", got)
	}
}

// TestKronPartitionBalance checks the odometer-based kron partitioner on
// composed models with skewed factor fill: it must produce exactly the
// cuts the generic per-row-cost partitioner would (same total, same cut
// condition) and keep every worker's entry share near the ideal.
func TestKronPartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	// A skewed factor: a handful of dense hub rows among sparse ones, so a
	// row-count split would load-imbalance the product space.
	nHub := 24
	hb := NewBuilder(nHub, nHub)
	for i := 0; i < nHub; i++ {
		var rowSum float64
		add := func(j int, v float64) {
			rowSum += v
			if err := hb.Add(i, j, v); err != nil {
				t.Fatal(err)
			}
		}
		add((i+1)%nHub, rng.Float64()+0.1)
		if i < 3 {
			for j := 0; j < nHub; j++ {
				if j != i {
					add(j, rng.Float64()+0.05)
				}
			}
		}
		if err := hb.Add(i, i, -rowSum); err != nil {
			t.Fatal(err)
		}
	}
	factors := []*CSR{hb.Build(), generatorFixture(t, rng, 11), generatorFixture(t, rng, 7)}
	ks, err := NewKronSum(factors, nil, 2.25)
	if err != nil {
		t.Fatal(err)
	}
	n := ks.Rows()
	for _, workers := range []int{2, 3, 4, 7, 16} {
		got := partitionKron(ks, workers)
		want := partitionRows(n, workers, func(i int) int64 {
			return rowBase + ks.RowCost(i)
		})
		if len(got) != len(want) {
			t.Fatalf("workers %d: partitionKron returned %d boundaries, want %d", workers, len(got), len(want))
		}
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("workers %d: partitionKron = %v, partitionRows = %v", workers, got, want)
			}
		}
		cost := func(lo, hi int) int64 {
			var c int64
			for i := lo; i < hi; i++ {
				c += rowBase + ks.RowCost(i)
			}
			return c
		}
		total := cost(0, n)
		var maxRow int64
		for i := 0; i < n; i++ {
			if c := rowBase + ks.RowCost(i); c > maxRow {
				maxRow = c
			}
		}
		for w := 0; w < workers; w++ {
			if got[w] > got[w+1] {
				t.Fatalf("workers %d: non-monotone blocks %v", workers, got)
			}
			// A block stops growing as soon as it reaches its share, so it
			// overshoots by at most one row.
			if share := cost(got[w], got[w+1]); share > total/int64(workers)+maxRow {
				t.Errorf("workers %d: block %d carries %d of %d (blocks %v)", workers, w, share, total, got)
			}
		}
	}
}
