package sparse

import "fmt"

// Diagonal is a diagonal matrix stored as its diagonal vector. The reward
// rate matrix R and variance matrix S of the paper are diagonal, so the
// randomization step R'·U and S'·U cost one vector-vector multiplication
// each.
type Diagonal struct {
	d []float64
}

// NewDiagonal wraps the given diagonal (copied).
func NewDiagonal(d []float64) *Diagonal {
	return &Diagonal{d: append([]float64(nil), d...)}
}

// Len returns the matrix dimension.
func (m *Diagonal) Len() int { return len(m.d) }

// At returns the i-th diagonal entry.
func (m *Diagonal) At(i int) float64 { return m.d[i] }

// Values returns a copy of the diagonal.
func (m *Diagonal) Values() []float64 { return append([]float64(nil), m.d...) }

// Scaled returns a new Diagonal equal to a*m.
func (m *Diagonal) Scaled(a float64) *Diagonal {
	out := make([]float64, len(m.d))
	for i, v := range m.d {
		out[i] = a * v
	}
	return &Diagonal{d: out}
}

// Shifted returns a new Diagonal equal to m - c*I.
func (m *Diagonal) Shifted(c float64) *Diagonal {
	out := make([]float64, len(m.d))
	for i, v := range m.d {
		out[i] = v - c
	}
	return &Diagonal{d: out}
}

// MatVec computes y = m*x in place into y. x and y may alias.
func (m *Diagonal) MatVec(x, y []float64) error {
	if len(x) != len(m.d) || len(y) != len(m.d) {
		return fmt.Errorf("%w: diagonal matvec dim %d with x=%d y=%d", ErrDimensionMismatch, len(m.d), len(x), len(y))
	}
	for i, v := range m.d {
		y[i] = v * x[i]
	}
	return nil
}

// MatVecAdd computes y += a*m*x. x and y may alias only if identical slices.
func (m *Diagonal) MatVecAdd(a float64, x, y []float64) error {
	if len(x) != len(m.d) || len(y) != len(m.d) {
		return fmt.Errorf("%w: diagonal matvecadd dim %d with x=%d y=%d", ErrDimensionMismatch, len(m.d), len(x), len(y))
	}
	if a == 0 {
		return nil
	}
	for i, v := range m.d {
		y[i] += a * v * x[i]
	}
	return nil
}

// Max returns the largest diagonal entry (0 for an empty matrix).
func (m *Diagonal) Max() float64 {
	if len(m.d) == 0 {
		return 0
	}
	mx := m.d[0]
	for _, v := range m.d[1:] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Min returns the smallest diagonal entry (0 for an empty matrix).
func (m *Diagonal) Min() float64 {
	if len(m.d) == 0 {
		return 0
	}
	mn := m.d[0]
	for _, v := range m.d[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// NonNegative reports whether every diagonal entry is >= 0.
func (m *Diagonal) NonNegative() bool {
	for _, v := range m.d {
		if v < 0 {
			return false
		}
	}
	return true
}
