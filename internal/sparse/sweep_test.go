package sparse

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// randomSweepFixture builds a random n-state sweep family: a sparse
// square matrix with a ring backbone (so no row is empty), diagonals of
// mixed sign, and optionally order impulse matrices.
func randomSweepFixture(t *testing.T, rng *rand.Rand, n, order int, impulses bool) *Sweep {
	t.Helper()
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if err := b.Add(i, (i+1)%n, rng.Float64()); err != nil {
			t.Fatal(err)
		}
		for e := rng.Intn(4); e > 0; e-- {
			if err := b.Add(i, rng.Intn(n), rng.Float64()-0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := b.Build()
	diag1 := make([]float64, n)
	diag2 := make([]float64, n)
	for i := range diag1 {
		diag1[i] = rng.Float64()*2 - 1
		diag2[i] = rng.Float64()
	}
	var imp []*CSR
	if impulses {
		for m := 0; m < order; m++ {
			ib := NewBuilder(n, n)
			for e := 0; e < n/2+1; e++ {
				if err := ib.Add(rng.Intn(n), rng.Intn(n), rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
			imp = append(imp, ib.Build())
		}
	}
	s, err := NewSweep(a, diag1, diag2, imp, order, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newRunState allocates cur/next with the standard initial condition
// (cur[0] = 1) and fresh plan accumulators over the given weights.
func newRunState(s *Sweep, weights [][]float64, firsts, lasts []int) (cur, next [][]float64, plans []SweepPlan) {
	n := s.rows
	cur = make([][]float64, s.order+1)
	next = make([][]float64, s.order+1)
	for j := 0; j <= s.order; j++ {
		cur[j] = make([]float64, n)
		next[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		cur[0][i] = 1
	}
	for pi, w := range weights {
		acc := make([][]float64, s.order+1)
		for j := range acc {
			acc[j] = make([]float64, n)
		}
		plans = append(plans, SweepPlan{First: firsts[pi], Last: lasts[pi], Weight: w, Acc: acc})
	}
	return cur, next, plans
}

// TestSweepFusedMatchesReference is the engine-level bitwise gate: for
// random matrix families (with and without impulses) and every worker
// count, the fused kernel must reproduce the serial reference sweep bit
// for bit — accumulators and product counts alike.
func TestSweepFusedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(60)
		order := rng.Intn(5)
		impulses := trial%2 == 1
		gMax := 1 + rng.Intn(40)
		s := randomSweepFixture(t, rng, n, order, impulses)

		nPlans := 1 + rng.Intn(3)
		weights := make([][]float64, nPlans)
		firsts := make([]int, nPlans)
		lasts := make([]int, nPlans)
		for pi := range weights {
			w := make([]float64, gMax+1)
			for k := range w {
				if rng.Float64() < 0.8 {
					w[k] = rng.Float64()
				}
			}
			weights[pi] = w
			firsts[pi] = rng.Intn(gMax + 1)
			lasts[pi] = firsts[pi] + rng.Intn(gMax+1-firsts[pi])
		}

		refCur, refNext, refPlans := newRunState(s, weights, firsts, lasts)
		refMV, err := s.RunReference(context.Background(), gMax, refCur, refNext, refPlans, 32)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		for _, workers := range []int{1, 2, 3, 7, runtime.GOMAXPROCS(0) + 2} {
			fs, err := NewSweep(s.a, s.diag1, s.diag2, s.imp, order, workers)
			if err != nil {
				t.Fatal(err)
			}
			cur, next, plans := newRunState(fs, weights, firsts, lasts)
			mv, err := fs.Run(context.Background(), gMax, cur, next, plans, 32)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if mv != refMV {
				t.Fatalf("trial %d workers %d: matvecs %d != reference %d", trial, workers, mv, refMV)
			}
			for pi := range plans {
				for j := 0; j <= order; j++ {
					for i := 0; i < fs.a.rows; i++ {
						got := plans[pi].Acc[j][i]
						want := refPlans[pi].Acc[j][i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("trial %d workers %d: plan %d acc[%d][%d] = %x, reference %x",
								trial, workers, pi, j, i, math.Float64bits(got), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

// bandedSweepFixture builds a sweep family over a genuinely banded matrix
// (the existing random fixture's ring backbone always defeats the band
// detector), so the band kernels get exercised.
func bandedSweepFixture(t *testing.T, rng *rand.Rand, n, lo, hi, order int) (*CSR, []float64, []float64) {
	t.Helper()
	a := bandedFixture(t, rng, n, lo, hi)
	diag1 := make([]float64, n)
	diag2 := make([]float64, n)
	for i := range diag1 {
		diag1[i] = rng.Float64()*2 - 1
		diag2[i] = rng.Float64()
	}
	return a, diag1, diag2
}

// TestSweepFormatsMatchReference is the storage-engine bitwise gate: for
// banded matrix families, every storage format (auto, compact, band,
// csr64) at every worker count must reproduce the serial reference sweep
// bit for bit — including the order-3 interleaved kernels with both fresh
// and dirty lent scratch.
func TestSweepFormatsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	formats := []MatrixFormat{FormatAuto, FormatCSR, FormatBand, FormatCSR64}
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(80)
		lo := rng.Intn(4)
		hi := rng.Intn(4)
		// Odd trials pin the paper shape: order 3, tridiagonal — the
		// interleaved band fast path.
		order := rng.Intn(5)
		if trial%2 == 1 {
			order, lo, hi = 3, 1, 1
		}
		gMax := 1 + rng.Intn(30)
		a, diag1, diag2 := bandedSweepFixture(t, rng, n, lo, hi, order)

		w := make([]float64, gMax+1)
		for k := range w {
			w[k] = rng.Float64()
		}
		weights := [][]float64{w}
		firsts, lasts := []int{0}, []int{gMax}

		ref, err := NewSweep(a, diag1, diag2, nil, order, 1)
		if err != nil {
			t.Fatal(err)
		}
		refCur, refNext, refPlans := newRunState(ref, weights, firsts, lasts)
		if _, err := ref.RunReference(context.Background(), gMax, refCur, refNext, refPlans, 32); err != nil {
			t.Fatal(err)
		}

		for _, format := range formats {
			for _, workers := range []int{1, 3} {
				for _, dirtyScratch := range []bool{false, true} {
					fs, err := NewSweepWithFormat(a, diag1, diag2, nil, order, workers, format)
					if err != nil {
						t.Fatal(err)
					}
					if format == FormatBand && fs.Format() != FormatBand {
						t.Fatalf("trial %d: forced band resolved to %q (lo=%d hi=%d n=%d)", trial, fs.Format(), lo, hi, n)
					}
					if dirtyScratch {
						if words := fs.Scratch4Words(); words > 0 {
							scratch := make([]float64, words)
							for i := range scratch {
								scratch[i] = math.NaN() // must be fully overwritten or zeroed
							}
							fs.SetScratch4(scratch)
						} else {
							continue // no interleaved path for this shape
						}
					}
					cur, next, plans := newRunState(fs, weights, firsts, lasts)
					if _, err := fs.Run(context.Background(), gMax, cur, next, plans, 32); err != nil {
						t.Fatalf("trial %d format %q workers %d: %v", trial, format, workers, err)
					}
					for j := 0; j <= order; j++ {
						for i := 0; i < n; i++ {
							got := plans[0].Acc[j][i]
							want := refPlans[0].Acc[j][i]
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("trial %d format %q (resolved %q) workers %d dirty=%v: acc[%d][%d] = %x, reference %x",
									trial, format, fs.Format(), workers, dirtyScratch, j, i,
									math.Float64bits(got), math.Float64bits(want))
							}
						}
					}
				}
			}
		}
	}
}

// TestSweepFormatResolution pins what NewSweep resolves for characteristic
// shapes: banded matrices stream the band, everything else the compact
// CSR, and csr64 remains available as the explicit baseline.
func TestSweepFormatResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tri, d1, d2 := bandedSweepFixture(t, rng, 300, 1, 1, 3)
	s, err := NewSweep(tri, d1, d2, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Format() != FormatBand {
		t.Errorf("tridiagonal auto format = %q, want band", s.Format())
	}
	if s.Scratch4Words() != 2*4*(300+2) {
		t.Errorf("Scratch4Words = %d, want %d", s.Scratch4Words(), 2*4*(300+2))
	}

	ring := randomSweepFixture(t, rng, 50, 3, false)
	if ring.Format() != FormatCSR32 {
		t.Errorf("ring auto format = %q, want csr32", ring.Format())
	}

	s64, err := NewSweepWithFormat(tri, d1, d2, nil, 3, 1, FormatCSR64)
	if err != nil {
		t.Fatal(err)
	}
	if s64.Format() != FormatCSR64 {
		t.Errorf("forced csr64 format = %q", s64.Format())
	}
	if s64.Scratch4Words() != 2*4*300 {
		t.Errorf("csr64 Scratch4Words = %d, want %d", s64.Scratch4Words(), 2*4*300)
	}

	// Impulse shapes never use the interleaved buffers.
	impl := randomSweepFixture(t, rng, 30, 3, true)
	if impl.Scratch4Words() != 0 {
		t.Errorf("impulse Scratch4Words = %d, want 0", impl.Scratch4Words())
	}
}

// TestSweepWindowClipping pins the windowing contract: iterations outside
// [First, Last] never accumulate, even when their weights are non-zero,
// and both kernels implement the identical contract.
func TestSweepWindowClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSweepFixture(t, rng, 12, 2, false)
	gMax := 20
	w := make([]float64, gMax+1)
	for k := range w {
		w[k] = 1 // non-zero everywhere: only the window may clip
	}

	full := func(first, last int) [][]float64 {
		cur, next, plans := newRunState(s, [][]float64{w}, []int{first}, []int{last})
		if _, err := s.RunReference(context.Background(), gMax, cur, next, plans, 32); err != nil {
			t.Fatal(err)
		}
		return plans[0].Acc
	}

	clipped := full(5, 9)
	var manual [][]float64
	{
		// Accumulate iterations 5..9 by hand from four separate windows.
		acc := full(5, 5)
		for _, k := range []int{6, 7, 8, 9} {
			one := full(k, k)
			for j := range acc {
				for i := range acc[j] {
					acc[j][i] += one[j][i]
				}
			}
		}
		manual = acc
	}
	for j := range clipped {
		for i := range clipped[j] {
			if math.Abs(clipped[j][i]-manual[j][i]) > 1e-12*math.Max(1, math.Abs(manual[j][i])) {
				t.Fatalf("acc[%d][%d] = %g, manual window sum %g", j, i, clipped[j][i], manual[j][i])
			}
		}
	}

	// An inert plan (Last < First) must accumulate nothing and a
	// full-range plan must accumulate something.
	cur, next, plans := newRunState(s, [][]float64{w, w}, []int{0, 3}, []int{-1, 12})
	if _, err := s.Run(context.Background(), gMax, cur, next, plans, 32); err != nil {
		t.Fatal(err)
	}
	for j := range plans[0].Acc {
		for i, v := range plans[0].Acc[j] {
			if v != 0 {
				t.Fatalf("inert plan accumulated acc[%d][%d] = %g", j, i, v)
			}
		}
	}
	var nonzero bool
	for _, v := range plans[1].Acc[0] {
		nonzero = nonzero || v != 0
	}
	if !nonzero {
		t.Fatal("windowed plan accumulated nothing")
	}
}

// TestPlanWorkers pins the parallelism policy: automatic selection stays
// on the reference sweep below the threshold, moves to a GOMAXPROCS team
// above it, and explicit requests are honored (capped at rows).
func TestPlanWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, rows, want int
	}{
		{0, parallelThreshold - 1, 0},
		{0, parallelThreshold, min(procs, parallelThreshold)},
		{-1, parallelThreshold * 4, 0},
		{-7, 10, 0},
		{3, 10, 3},
		{3, 2, 2},
		{1, parallelThreshold * 4, 1},
	}
	for _, c := range cases {
		if got := PlanWorkers(c.requested, c.rows); got != c.want {
			t.Errorf("PlanWorkers(%d, %d) = %d, want %d", c.requested, c.rows, got, c.want)
		}
	}
}

// TestNnzPartition checks the load-balanced row split on a pathologically
// skewed matrix: a handful of dense hub rows among many sparse ones. A
// row-count split would put all hubs in one block; the nnz split must
// keep every block within a small factor of the ideal share.
func TestNnzPartition(t *testing.T) {
	const n = 1000
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		_ = b.Add(i, (i+1)%n, 1) // sparse backbone
	}
	for h := 0; h < 5; h++ {
		for j := 0; j < n; j++ {
			_ = b.Add(h, j, 1) // five dense hub rows at the top
		}
	}
	a := b.Build()
	workers := 4
	blocks := partitionRows(a.rows, workers, func(i int) int64 {
		return int64(rowBase + a.rowPtr[i+1] - a.rowPtr[i])
	})
	if len(blocks) != workers+1 || blocks[0] != 0 || blocks[workers] != n {
		t.Fatalf("bad block boundaries %v", blocks)
	}
	cost := func(lo, hi int) int {
		c := 0
		for i := lo; i < hi; i++ {
			c += 4 + a.rowPtr[i+1] - a.rowPtr[i]
		}
		return c
	}
	total := cost(0, n)
	for w := 0; w < workers; w++ {
		if blocks[w] > blocks[w+1] {
			t.Fatalf("non-monotone blocks %v", blocks)
		}
		share := cost(blocks[w], blocks[w+1])
		// A single row is indivisible, so allow one max-row of slack plus
		// a fraction of the ideal share.
		if share > total/workers+n+10 {
			t.Errorf("worker %d carries %d of %d total (blocks %v)", w, share, total, blocks)
		}
	}
}

// TestSweepValidation exercises the constructor and run-state checks.
func TestSweepValidation(t *testing.T) {
	a, err := NewCSRFromDense(2, 2, []float64{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rect, err := NewCSRFromDense(2, 3, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	d2 := []float64{1, 2}
	if _, err := NewSweep(nil, d2, d2, nil, 1, 1); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewSweep(rect, d2, d2, nil, 1, 1); err == nil {
		t.Error("rectangular matrix accepted")
	}
	if _, err := NewSweep(a, []float64{1}, d2, nil, 1, 1); err == nil {
		t.Error("short diagonal accepted")
	}
	if _, err := NewSweep(a, d2, d2, nil, -1, 1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := NewSweep(a, d2, d2, []*CSR{a}, 2, 1); err == nil {
		t.Error("too few impulse matrices accepted")
	}

	s, err := NewSweep(a, d2, d2, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := [][]float64{{1, 1}, {0, 0}}
	if _, err := s.Run(context.Background(), 1, good[:1], good, nil, 32); err == nil {
		t.Error("short cur accepted")
	}
	badPlan := []SweepPlan{{First: 0, Last: 5, Weight: []float64{1}}}
	if _, err := s.Run(context.Background(), 1, good, [][]float64{{0, 0}, {0, 0}}, badPlan, 32); err == nil {
		t.Error("window beyond weights accepted")
	}
}

// TestSweepCancellation verifies both kernels honor context cancellation
// and that the persistent team's goroutines drain on every exit path.
func TestSweepCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s2, err := NewSweep(randomSweepFixture(t, rng, 50, 2, false).a,
		make([]float64, 50), make([]float64, 50), nil, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cur, next, plans := newRunState(s2, [][]float64{make([]float64, 1001)}, []int{0}, []int{1000})
	if _, err := s2.Run(ctx, 1000, cur, next, plans, 1); err == nil {
		t.Fatal("cancelled fused run returned no error")
	}
	if _, err := s2.RunReference(ctx, 1000, cur, next, plans, 1); err == nil {
		t.Fatal("cancelled reference run returned no error")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("worker goroutines leaked: %d > %d", g, before)
	}
}

// countdownCtx reports cancellation after its Err method has been polled
// a fixed number of times, letting tests interrupt a sweep at an exact
// iteration barrier deterministically.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls <= 0 {
		return context.DeadlineExceeded
	}
	c.polls--
	return nil
}

// TestSweepResumeBitwise is the engine-level resume gate: a sweep
// interrupted at every iteration barrier, state-exported through the
// interrupt hook, and continued with RunFrom must reproduce the
// uninterrupted run bit for bit — for every storage format, worker
// count, and the reference kernel alike.
func TestSweepResumeBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	type build func() (*Sweep, error)
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(40)
		order := rng.Intn(5)
		if trial%2 == 1 {
			order = 3 // interleaved kernels
		}
		gMax := 3 + rng.Intn(12)
		var a *CSR
		var d1, d2v []float64
		if trial%2 == 1 {
			a, d1, d2v = bandedSweepFixture(t, rng, n, 1, 1, order)
		} else {
			f := randomSweepFixture(t, rng, n, order, trial%4 == 2)
			a, d1, d2v = f.a, f.diag1, f.diag2
		}

		w := make([]float64, gMax+1)
		for k := range w {
			w[k] = rng.Float64()
		}
		weights := [][]float64{w}
		firsts, lasts := []int{0}, []int{gMax}

		builders := map[string]build{
			"auto/w1":  func() (*Sweep, error) { return NewSweep(a, d1, d2v, nil, order, 1) },
			"auto/w3":  func() (*Sweep, error) { return NewSweep(a, d1, d2v, nil, order, 3) },
			"csr64/w2": func() (*Sweep, error) { return NewSweepWithFormat(a, d1, d2v, nil, order, 2, FormatCSR64) },
			"band/w2":  func() (*Sweep, error) { return NewSweepWithFormat(a, d1, d2v, nil, order, 2, FormatBand) },
		}
		for name, mk := range builders {
			if name == "band/w2" && trial%2 == 0 {
				continue // not banded
			}
			s, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			fullCur, fullNext, fullPlans := newRunState(s, weights, firsts, lasts)
			fullMV, err := s.Run(context.Background(), gMax, fullCur, fullNext, fullPlans, 1)
			if err != nil {
				t.Fatalf("trial %d %s: full run: %v", trial, name, err)
			}

			// Interrupt at every barrier k = 1..gMax (completed = k-1) and
			// resume; the combined run must match the uninterrupted one.
			for polls := 1; polls <= gMax; polls++ {
				rs, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				var completed = -1
				state := make([][]float64, order+1)
				for j := range state {
					state[j] = make([]float64, n)
				}
				rs.SetInterruptHook(func(done int, export func([][]float64)) {
					completed = done
					export(state)
				})
				cur, next, plans := newRunState(rs, weights, firsts, lasts)
				ctx := &countdownCtx{Context: context.Background(), polls: polls - 1}
				if _, err := rs.Run(ctx, gMax, cur, next, plans, 1); err == nil {
					t.Fatalf("trial %d %s polls %d: run was not interrupted", trial, name, polls)
				}
				if completed != polls-1 {
					t.Fatalf("trial %d %s polls %d: completed = %d", trial, name, polls, completed)
				}
				rs.SetInterruptHook(nil)
				for j := range state {
					copy(cur[j], state[j])
				}
				mv, err := rs.RunFrom(context.Background(), completed+1, gMax, cur, next, plans, 1)
				if err != nil {
					t.Fatalf("trial %d %s polls %d: resume: %v", trial, name, polls, err)
				}
				if want := fullMV - rs.matVecs(completed); mv != want {
					t.Fatalf("trial %d %s polls %d: resumed matvecs %d, want %d", trial, name, polls, mv, want)
				}
				for j := 0; j <= order; j++ {
					for i := 0; i < n; i++ {
						got := plans[0].Acc[j][i]
						want := fullPlans[0].Acc[j][i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("trial %d %s polls %d: acc[%d][%d] = %x, want %x",
								trial, name, polls, j, i, math.Float64bits(got), math.Float64bits(want))
						}
					}
				}
			}

			// The reference kernel honors the same contract.
			rr, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			refCur, refNext, refPlans := newRunState(rr, weights, firsts, lasts)
			refMV, err := rr.RunReference(context.Background(), gMax, refCur, refNext, refPlans, 1)
			if err != nil {
				t.Fatal(err)
			}
			if name == "auto/w1" && refMV != fullMV {
				t.Fatalf("trial %d: reference matvecs %d != fused %d", trial, refMV, fullMV)
			}
			ri, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			var completed = -1
			state := make([][]float64, order+1)
			for j := range state {
				state[j] = make([]float64, n)
			}
			ri.SetInterruptHook(func(done int, export func([][]float64)) {
				completed = done
				export(state)
			})
			cur, next, plans := newRunState(ri, weights, firsts, lasts)
			half := gMax/2 + 1
			ctx := &countdownCtx{Context: context.Background(), polls: half - 1}
			if _, err := ri.RunReference(ctx, gMax, cur, next, plans, 1); err == nil {
				t.Fatalf("trial %d %s: reference run was not interrupted", trial, name)
			}
			ri.SetInterruptHook(nil)
			for j := range state {
				copy(cur[j], state[j])
			}
			if _, err := ri.RunReferenceFrom(context.Background(), completed+1, gMax, cur, next, plans, 1); err != nil {
				t.Fatal(err)
			}
			for j := 0; j <= order; j++ {
				for i := 0; i < n; i++ {
					if math.Float64bits(plans[0].Acc[j][i]) != math.Float64bits(refPlans[0].Acc[j][i]) {
						t.Fatalf("trial %d %s: reference resume acc[%d][%d] mismatch", trial, name, j, i)
					}
				}
			}
		}
	}
}
