//go:build amd64

package sparse

import "testing"

// TestDetectAVX2Stable pins the detection contract on amd64: detectAVX2
// is a pure CPUID/XGETBV probe, so repeated calls agree with the cached
// hasAVX2 that SIMDAvailable and every dispatch gate consult.
func TestDetectAVX2Stable(t *testing.T) {
	for i := 0; i < 3; i++ {
		if got := detectAVX2(); got != hasAVX2 {
			t.Fatalf("detectAVX2() = %v on call %d, cached hasAVX2 = %v", got, i, hasAVX2)
		}
	}
	if SIMDAvailable() != hasAVX2 {
		t.Fatalf("SIMDAvailable() = %v, hasAVX2 = %v", SIMDAvailable(), hasAVX2)
	}
}
