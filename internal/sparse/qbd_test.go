package sparse

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// qbdFixture builds a random block-tridiagonal matrix with the given
// level count and block size: every stored entry couples a level only to
// itself or an adjacent level, all values strictly positive so the
// builder never merges an entry away.
func qbdFixture(t testing.TB, rng *rand.Rand, levels, b int) *CSR {
	t.Helper()
	n := levels * b
	bld := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if err := bld.Add(i, i, rng.Float64()+0.1); err != nil {
			t.Fatal(err)
		}
		blk := i / b
		lo, hi := (blk-1)*b, (blk+2)*b
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for j := lo; j < hi; j++ {
			if j != i && rng.Float64() < 0.4 {
				if err := bld.Add(i, j, rng.Float64()+0.05); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return bld.Build()
}

func TestQBDBlockDetection(t *testing.T) {
	t.Run("tridiagonal", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		m := bandedFixture(t, rng, 12, 1, 1)
		if b := m.QBDBlock(); b != 1 {
			t.Fatalf("QBDBlock() = %d, want 1 for a tridiagonal matrix", b)
		}
	})
	t.Run("forced-block-4", func(t *testing.T) {
		// Entry (0,7) has reach 7, so minB = (7+2)/2 = 4; the divisors of
		// 12 at or above that are 4, 6, 12, and 4 already keeps (0,7)
		// within adjacent blocks.
		bld := NewBuilder(12, 12)
		for i := 0; i < 12; i++ {
			if err := bld.Add(i, i, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := bld.Add(0, 7, 2); err != nil {
			t.Fatal(err)
		}
		if b := bld.Build().QBDBlock(); b != 4 {
			t.Fatalf("QBDBlock() = %d, want 4", b)
		}
	})
	t.Run("forced-block-6", func(t *testing.T) {
		// Entry (11,0) rules out b = 4 (levels 2 and 0 are not adjacent)
		// and its reach of 11 prunes everything below (11+2)/2 = 6.
		bld := NewBuilder(12, 12)
		for i := 0; i < 12; i++ {
			if err := bld.Add(i, i, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := bld.Add(11, 0, 2); err != nil {
			t.Fatal(err)
		}
		if b := bld.Build().QBDBlock(); b != 6 {
			t.Fatalf("QBDBlock() = %d, want 6", b)
		}
	})
	t.Run("no-valid-block", func(t *testing.T) {
		// 257 is prime and above maxForcedQBDBlock, so once entry (0,256)
		// rules out small blocks no divisor survives the cap.
		bld := NewBuilder(257, 257)
		for i := 0; i < 257; i++ {
			if err := bld.Add(i, i, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := bld.Add(0, 256, 2); err != nil {
			t.Fatal(err)
		}
		m := bld.Build()
		if b := m.QBDBlock(); b != 0 {
			t.Fatalf("QBDBlock() = %d, want 0", b)
		}
		if rep := m.QBDRep(); rep != nil {
			t.Fatal("QBDRep() should be nil when no block size is valid")
		}
	})
	t.Run("non-square", func(t *testing.T) {
		bld := NewBuilder(3, 4)
		if err := bld.Add(0, 0, 1); err != nil {
			t.Fatal(err)
		}
		if b := bld.Build().QBDBlock(); b != 0 {
			t.Fatalf("QBDBlock() = %d, want 0 for a non-square matrix", b)
		}
	})
	t.Run("cached", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		m := qbdFixture(t, rng, 4, 3)
		rep := m.QBDRep()
		if rep == nil {
			t.Fatal("QBDRep() = nil")
		}
		if again := m.QBDRep(); again != rep {
			t.Fatal("QBDRep not cached")
		}
	})
}

func TestQBDEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(13))

	// Fully dense blocks make the 3b window pay: auto and forced agree.
	bld0 := NewBuilder(32, 32)
	for i := 0; i < 32; i++ {
		blk := i / 4
		lo, hi := (blk-1)*4, (blk+2)*4
		if lo < 0 {
			lo = 0
		}
		if hi > 32 {
			hi = 32
		}
		for j := lo; j < hi; j++ {
			if err := bld0.Add(i, j, rng.Float64()+0.1); err != nil {
				t.Fatal(err)
			}
		}
	}
	dense := bld0.Build()
	if b := dense.QBDBlock(); b != 4 {
		t.Fatalf("QBDBlock() = %d, want 4", b)
	}
	if !dense.qbdEligible(false) {
		t.Error("dense block fixture should be auto-eligible")
	}
	if !dense.qbdEligible(true) {
		t.Error("dense block fixture should be forced-eligible")
	}

	// A wide but tiny matrix: block 6 exceeds nothing, but if the blocks
	// are nearly empty the 3b window fails the auto cost test while the
	// small-matrix escape hatch keeps the forced policy open.
	bld := NewBuilder(12, 12)
	for i := 0; i < 12; i++ {
		if err := bld.Add(i, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := bld.Add(11, 0, 2); err != nil {
		t.Fatal(err)
	}
	sparse := bld.Build()
	if sparse.qbdEligible(false) {
		t.Error("sparse 12x12 with block 6 should fail the auto cost test")
	}
	if !sparse.qbdEligible(true) {
		t.Error("small matrices should stay forced-eligible via the cell cap")
	}

	// Large and sparse: the window cost dwarfs the nnz and the matrix is
	// too big for the escape hatch, so even forced declines.
	const n, blk = 1024, 32
	big := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if err := big.Add(i, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := big.Add(0, 2*blk-1, 2); err != nil { // reach 63 -> minB 32
		t.Fatal(err)
	}
	huge := big.Build()
	if b := huge.QBDBlock(); b != blk {
		t.Fatalf("QBDBlock() = %d, want %d", b, blk)
	}
	if huge.qbdEligible(false) {
		t.Error("1024-state block-32 matrix should fail the auto policy")
	}
	if huge.qbdEligible(true) {
		t.Error("1024-state near-diagonal matrix should fail even the forced policy")
	}
}

// TestQBDMatVecBitwise checks the QBD window kernel against CSR MatVec
// bit for bit, including the boundary levels whose windows clip.
func TestQBDMatVecBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		levels := 1 + rng.Intn(6)
		b := 1 + rng.Intn(5)
		m := qbdFixture(t, rng, levels, b)
		rep := m.QBDRep()
		if rep == nil {
			t.Fatalf("trial %d: QBDRep() = nil", trial)
		}
		n := m.rows
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		got := make([]float64, n)
		if err := m.MatVec(x, want); err != nil {
			t.Fatal(err)
		}
		rep.MatVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d (n=%d b=%d): MatVec[%d] = %x, want %x",
					trial, n, rep.Block(), i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}

		// Partial ranges must only touch their rows.
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)
		partial := make([]float64, n)
		for i := range partial {
			partial[i] = math.NaN()
		}
		rep.MatVecRange(lo, hi, x, partial)
		for i := lo; i < hi; i++ {
			if math.Float64bits(partial[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: MatVecRange[%d] = %x, want %x",
					trial, i, math.Float64bits(partial[i]), math.Float64bits(want[i]))
			}
		}
		for i := 0; i < n; i++ {
			if (i < lo || i >= hi) && !math.IsNaN(partial[i]) {
				t.Fatalf("trial %d: MatVecRange wrote outside [%d,%d) at %d", trial, lo, hi, i)
			}
		}

		var cost int64
		for i := 0; i < n; i++ {
			cost += rep.RowCost(i)
		}
		if interior := int64(3 * rep.Block()); cost > int64(n)*interior {
			t.Fatalf("trial %d: summed RowCost %d exceeds the full window bound %d", trial, cost, int64(n)*interior)
		}
	}
}

// FuzzQBDRoundTrip drives CSR -> QBD -> CSR from fuzzed level/block
// seeds: the round trip must reproduce the source structure and values
// exactly, and the QBD MatVec must match CSR bit for bit.
func FuzzQBDRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3))
	f.Add(int64(2), uint8(1), uint8(1))
	f.Add(int64(3), uint8(9), uint8(2))
	f.Add(int64(4), uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, levelsRaw, bRaw uint8) {
		levels := 1 + int(levelsRaw)%12
		b := 1 + int(bRaw)%8
		rng := rand.New(rand.NewSource(seed))
		m := qbdFixture(t, rng, levels, b)
		rep := m.QBDRep()
		if rep == nil {
			// n = levels*b <= 96, so the degenerate single level always
			// qualifies; nil means the detector regressed.
			t.Fatalf("QBDRep() = nil for n=%d", m.rows)
		}
		back := rep.ToCSR()
		if back.rows != m.rows || back.cols != m.cols {
			t.Fatalf("round trip shape %dx%d, want %dx%d", back.rows, back.cols, m.rows, m.cols)
		}
		for i := 0; i <= m.rows; i++ {
			if back.rowPtr[i] != m.rowPtr[i] {
				t.Fatalf("rowPtr[%d] = %d, want %d", i, back.rowPtr[i], m.rowPtr[i])
			}
		}
		for p := range m.colIdx {
			if back.colIdx[p] != m.colIdx[p] {
				t.Fatalf("colIdx[%d] = %d, want %d", p, back.colIdx[p], m.colIdx[p])
			}
			if math.Float64bits(back.val[p]) != math.Float64bits(m.val[p]) {
				t.Fatalf("val[%d] = %x, want %x", p, math.Float64bits(back.val[p]), math.Float64bits(m.val[p]))
			}
		}

		n := m.rows
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		got := make([]float64, n)
		if err := m.MatVec(x, want); err != nil {
			t.Fatal(err)
		}
		rep.MatVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("MatVec[%d] = %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}

// TestSweepQBDMatchesReference is the QBD kernel's bitwise gate: forced
// qbd sweeps over block-tridiagonal families must reproduce the serial
// reference bit for bit at every worker count, including the order-3
// interleaved fast path with dirty lent scratch.
func TestSweepQBDMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		levels := 2 + rng.Intn(5)
		b := 2 + rng.Intn(4)
		order := rng.Intn(5)
		if trial%2 == 1 {
			order = 3 // the interleaved QBD fast path
		}
		a := qbdFixture(t, rng, levels, b)
		n := a.rows
		diag1 := make([]float64, n)
		diag2 := make([]float64, n)
		for i := range diag1 {
			diag1[i] = rng.Float64()*2 - 1
			diag2[i] = rng.Float64()
		}
		gMax := 1 + rng.Intn(30)
		w := make([]float64, gMax+1)
		for k := range w {
			w[k] = rng.Float64()
		}
		weights := [][]float64{w}
		firsts, lasts := []int{0}, []int{gMax}

		ref, err := NewSweep(a, diag1, diag2, nil, order, 1)
		if err != nil {
			t.Fatal(err)
		}
		refCur, refNext, refPlans := newRunState(ref, weights, firsts, lasts)
		if _, err := ref.RunReference(context.Background(), gMax, refCur, refNext, refPlans, 32); err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 2, 5} {
			for _, dirtyScratch := range []bool{false, true} {
				fs, err := NewSweepWithFormat(a, diag1, diag2, nil, order, workers, FormatQBD)
				if err != nil {
					t.Fatal(err)
				}
				if fs.Format() != FormatQBD {
					t.Fatalf("trial %d: forced qbd resolved to %q (n=%d b=%d)", trial, fs.Format(), n, b)
				}
				if dirtyScratch {
					words := fs.Scratch4Words()
					if words == 0 {
						continue
					}
					scratch := make([]float64, words)
					for i := range scratch {
						scratch[i] = math.NaN()
					}
					fs.SetScratch4(scratch)
				}
				cur, next, plans := newRunState(fs, weights, firsts, lasts)
				if _, err := fs.Run(context.Background(), gMax, cur, next, plans, 32); err != nil {
					t.Fatalf("trial %d workers %d: %v", trial, workers, err)
				}
				for j := 0; j <= order; j++ {
					for i := 0; i < n; i++ {
						got := plans[0].Acc[j][i]
						want := refPlans[0].Acc[j][i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("trial %d workers %d dirty=%v: acc[%d][%d] = %x, reference %x",
								trial, workers, dirtyScratch, j, i, math.Float64bits(got), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

// TestSweepOperatorMatchesReference runs the generic operator sweep path
// (NewSweepOperator with no materialized CSR) against the explicit-matrix
// reference: the streaming MatVecRange dispatch and the operator row
// partitioner must not change a single bit.
func TestSweepOperatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		levels := 2 + rng.Intn(4)
		b := 1 + rng.Intn(4)
		order := rng.Intn(4)
		a := qbdFixture(t, rng, levels, b)
		n := a.rows
		diag1 := make([]float64, n)
		diag2 := make([]float64, n)
		for i := range diag1 {
			diag1[i] = rng.Float64()*2 - 1
			diag2[i] = rng.Float64()
		}
		gMax := 1 + rng.Intn(20)
		w := make([]float64, gMax+1)
		for k := range w {
			w[k] = rng.Float64()
		}
		weights := [][]float64{w}
		firsts, lasts := []int{0}, []int{gMax}

		ref, err := NewSweep(a, diag1, diag2, nil, order, 1)
		if err != nil {
			t.Fatal(err)
		}
		refCur, refNext, refPlans := newRunState(ref, weights, firsts, lasts)
		refMV, err := ref.RunReference(context.Background(), gMax, refCur, refNext, refPlans, 32)
		if err != nil {
			t.Fatal(err)
		}

		ops := map[string]Operator{
			"csr": AsOperator(a),
			"qbd": a.QBDRep(),
		}
		for name, op := range ops {
			if op == nil || op.(interface{ Rows() int }) == nil {
				t.Fatalf("trial %d: nil %s operator", trial, name)
			}
			for _, workers := range []int{1, 3} {
				os, err := NewSweepOperator(op, diag1, diag2, order, workers)
				if err != nil {
					t.Fatal(err)
				}
				if words := os.Scratch4Words(); name == "csr" && words != 0 {
					t.Fatalf("trial %d: generic operator sweep reports %d scratch words", trial, words)
				}
				cur, next, plans := newRunState(os, weights, firsts, lasts)
				mv, err := os.Run(context.Background(), gMax, cur, next, plans, 32)
				if err != nil {
					t.Fatalf("trial %d op %s workers %d: %v", trial, name, workers, err)
				}
				if mv != refMV {
					t.Fatalf("trial %d op %s: matvecs %d != reference %d", trial, name, mv, refMV)
				}
				for j := 0; j <= order; j++ {
					for i := 0; i < n; i++ {
						got := plans[0].Acc[j][i]
						want := refPlans[0].Acc[j][i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("trial %d op %s workers %d: acc[%d][%d] = %x, reference %x",
								trial, name, workers, j, i, math.Float64bits(got), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

func TestSweepOperatorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := qbdFixture(t, rng, 2, 2)
	op := AsOperator(a)
	good := make([]float64, a.rows)

	if _, err := NewSweepOperator(nil, good, good, 1, 1); err == nil {
		t.Error("nil operator accepted")
	}
	if _, err := NewSweepOperator(op, good[:2], good, 1, 1); err == nil {
		t.Error("short diag1 accepted")
	}
	if _, err := NewSweepOperator(op, good, good[:2], 1, 1); err == nil {
		t.Error("short diag2 accepted")
	}
	if _, err := NewSweepOperator(op, good, good, -1, 1); err == nil {
		t.Error("negative order accepted")
	}
	s, err := NewSweepOperator(op, good, good, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if s.workers > a.rows {
		t.Errorf("workers %d not clamped to %d rows", s.workers, a.rows)
	}
	if s.Format() != FormatCSR64 {
		t.Errorf("Format() = %q, want csr64 for the CSR adapter", s.Format())
	}
}
