//go:build amd64

#include "textflag.h"

// AVX2 bodies of the order-3 interleaved fused kernels for the CSR32 and
// QBD storage formats (see sweep_simd_amd64.go for the Go contracts and
// band_simd_amd64.s for the band-format sibling these follow).
//
// Bitwise rules, shared with the band kernels: the interleaved layout
// puts the four moment sums of a row in one ymm (lane j = moment j), and
// every lane executes the scalar loop's exact operation sequence — a
// separate vmulpd+vaddpd per term (never an FMA), the row sum seeded
// from an explicit +0 (vxorpd), the d1/d2 order-coupling terms masked
// onto lanes 1..3 / 2..3 with vblendpd, and only VEX encodings in the
// scalar tails (legacy SSE here would pay an AVX state transition per
// row). Work is reordered only between different output elements, which
// float64 cannot observe, so results are bitwise identical to the Go
// loops and the serial reference.

// COUPLE3 applies the order-coupling diagonal terms to the row sums in
// Y6 = [s0 s1 s2 s3], given the row's own state window civ = cur4[i*4]:
//
//	s_j += d1*civ[j-1]   lanes 1..3 (vblendpd keeps lane 0)
//	s_j += d2*civ[j-2]   lanes 2..3
//
// exactly the scalar kernels' civ sequence. The vpermpd lane shifts pull
// junk into the low lanes, which the blends discard.
//
// In: R13 = &cur4[i*4], R8 = &d1[i], R9 = &d2[i]. Uses Y2, Y4, Y5, Y7, Y8.
#define COUPLE3 \
	VMOVUPD      (R13), Y2        \ // civ = cur4[i*4 : i*4+4]
	VBROADCASTSD (R8), Y4         \
	VPERMPD      $0x90, Y2, Y7    \ // [c0 c0 c1 c2]
	VMULPD       Y7, Y4, Y5       \
	VADDPD       Y5, Y6, Y8       \
	VBLENDPD     $0x0E, Y8, Y6, Y6 \
	VBROADCASTSD (R9), Y4         \
	VPERMPD      $0x40, Y2, Y7    \ // [c0 c0 c0 c1]
	VMULPD       Y7, Y4, Y5       \
	VADDPD       Y5, Y6, Y8       \
	VBLENDPD     $0x0C, Y8, Y6, Y6

// func csr32Fuse3AVX2(n int, rowPtr *int, col32 *uint32, val *float64, cur4, self, next, d1, d2 *float64)
//
// n rows of the compact-index CSR recursion: per stored entry, broadcast
// the value and gather the source state's 32-byte moment group through
// the uint32 column index (col*32 is the byte offset into cur4).
TEXT ·csr32Fuse3AVX2(SB), NOSPLIT, $0-72
	MOVQ n+0(FP), CX
	MOVQ rowPtr+8(FP), SI
	MOVQ col32+16(FP), AX
	MOVQ val+24(FP), BX
	MOVQ cur4+32(FP), DI
	MOVQ self+40(FP), R13
	MOVQ next+48(FP), DX
	MOVQ d1+56(FP), R8
	MOVQ d2+64(FP), R9
	TESTQ CX, CX
	JZ   done

	// Advance the value/column cursors to the first row's entries; from
	// there they stream contiguously across rows.
	MOVQ (SI), R10        // p = rowPtr[lo]
	LEAQ (BX)(R10*8), BX
	LEAQ (AX)(R10*4), AX

rowloop:
	MOVQ 8(SI), R11
	SUBQ R10, R11         // entries in this row
	ADDQ R11, R10         // p = rowPtr[i+1]
	ADDQ $8, SI
	VXORPD Y6, Y6, Y6     // s = [+0 +0 +0 +0]
	TESTQ R11, R11
	JZ   couple

entry:
	VBROADCASTSD (BX), Y4
	MOVL (AX), R12        // column (zero-extended)
	SHLQ $5, R12          // *32 bytes: the state's interleaved group
	VMOVUPD (DI)(R12*1), Y1
	VMULPD  Y1, Y4, Y5
	VADDPD  Y5, Y6, Y6
	ADDQ $8, BX
	ADDQ $4, AX
	DECQ R11
	JNZ  entry

couple:
	COUPLE3
	VMOVUPD Y6, (DX)
	ADDQ $32, R13
	ADDQ $32, DX
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ CX
	JNZ  rowloop

done:
	VZEROUPPER
	RET

// func qbd3AVX2(nb, b int, bval, win, self, next, d1, d2 *float64)
//
// nb consecutive full interior QBD blocks of b rows each, starting at a
// block-aligned row: every row streams its dense 3b-cell window against
// a strided run of 32-byte state groups starting at the level window
// base win (constant within a block, advancing one level per block).
// Boundary levels and block-partial row ranges stay on the scalar kernel
// (see fuseBlock3QBDAVX2).
TEXT ·qbd3AVX2(SB), NOSPLIT, $0-64
	MOVQ nb+0(FP), CX
	MOVQ b+8(FP), BX
	MOVQ bval+16(FP), SI
	MOVQ win+24(FP), DI
	MOVQ self+32(FP), R13
	MOVQ next+40(FP), DX
	MOVQ d1+48(FP), R8
	MOVQ d2+56(FP), R9
	LEAQ (BX)(BX*2), R12  // cells per interior row = 3b
	TESTQ CX, CX
	JZ   done

blockloop:
	MOVQ BX, R10          // rows left in this block

rowloop:
	MOVQ DI, AX           // state cursor = window base
	MOVQ R12, R11         // cells left in this row
	VXORPD Y6, Y6, Y6     // s = [+0 +0 +0 +0]

cellloop:
	VBROADCASTSD (SI), Y4
	VMOVUPD (AX), Y1
	VMULPD  Y1, Y4, Y5
	VADDPD  Y5, Y6, Y6
	ADDQ $8, SI
	ADDQ $32, AX
	DECQ R11
	JNZ  cellloop

	COUPLE3
	VMOVUPD Y6, (DX)
	ADDQ $32, R13
	ADDQ $32, DX
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ R10
	JNZ  rowloop

	// Next block: the level window slides down one level (b states).
	MOVQ BX, R11
	SHLQ $5, R11
	ADDQ R11, DI
	DECQ CX
	JNZ  blockloop

done:
	VZEROUPPER
	RET

// func sweepAcc3AVX2(n int, next, a0, a1, a2, a3 *float64, w float64)
//
// Poisson accumulation pass a_j[i] += w*s_j over n rows of the
// interleaved next buffer: one vmulpd rounding for the four products,
// then one VEX scalar add per planar accumulator lane — exactly the
// fused scalar switch's per-element sequence (the stored s_j reloads
// bit-exactly). Shared by every vector kernel's tiled kernel+acc split.
TEXT ·sweepAcc3AVX2(SB), NOSPLIT, $0-56
	MOVQ n+0(FP), CX
	MOVQ next+8(FP), DX
	MOVQ a0+16(FP), R10
	MOVQ a1+24(FP), R11
	MOVQ a2+32(FP), R12
	MOVQ a3+40(FP), R13
	VBROADCASTSD w+48(FP), Y14
	TESTQ CX, CX
	JZ   done

loop:
	VMOVUPD (DX), Y6
	VMULPD  Y6, Y14, Y5   // [w*s0 w*s1 w*s2 w*s3]
	VEXTRACTF128 $1, Y5, X7
	VADDSD  (R10), X5, X9
	VMOVSD  X9, (R10)
	VUNPCKHPD X5, X5, X8
	VADDSD  (R11), X8, X9
	VMOVSD  X9, (R11)
	VADDSD  (R12), X7, X9
	VMOVSD  X9, (R12)
	VUNPCKHPD X7, X7, X8
	VADDSD  (R13), X8, X9
	VMOVSD  X9, (R13)
	ADDQ $32, DX
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET
