//go:build amd64

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// ROW3 computes one tridiagonal row of the order-3 interleaved sweep into
// Y6 = [s0 s1 s2 s3], the vector form of the scalar fast path in
// fuseBlock3Band. Lane j runs the scalar loop's exact operation sequence:
//
//	s_j  = 0 + v0*cw[j]          (Y15 is kept zero)
//	s_j += v1*cw[4+j]
//	s_j += v2*cw[8+j]
//	s_j += d1*cw[3+j]   lanes 1..3 only (vblendpd keeps lane 0)
//	s_j += d2*cw[2+j]   lanes 2..3 only
//
// Every step is a separate vmulpd+vaddpd — never an FMA — so each lane
// rounds exactly like the scalar mulsd/addsd chain and the results are
// bitwise identical to the Go loop. The d1/d2 terms use vpermpd lane
// shifts of cw[4:8]; the shifted-in low lanes are junk but blended away.
//
// In: SI=bval row triple, DI=cur window (cur4[i*4]), R8=d1[i], R9=d2[i].
// Uses Y1-Y8, leaves Y15 zero.
#define ROW3 \
	VMOVUPD      (DI), Y1         \ // cw[0:4]
	VMOVUPD      32(DI), Y2       \ // cw[4:8]
	VMOVUPD      64(DI), Y3       \ // cw[8:12]
	VBROADCASTSD (SI), Y4         \
	VMULPD       Y1, Y4, Y5       \
	VADDPD       Y5, Y15, Y6      \
	VBROADCASTSD 8(SI), Y4        \
	VMULPD       Y2, Y4, Y5       \
	VADDPD       Y5, Y6, Y6       \
	VBROADCASTSD 16(SI), Y4       \
	VMULPD       Y3, Y4, Y5       \
	VADDPD       Y5, Y6, Y6       \
	VBROADCASTSD (R8), Y4         \
	VPERMPD      $0x90, Y2, Y7    \ // [cw4 cw4 cw5 cw6]
	VMULPD       Y7, Y4, Y5       \
	VADDPD       Y5, Y6, Y8       \
	VBLENDPD     $0x0E, Y8, Y6, Y6 \
	VBROADCASTSD (R9), Y4         \
	VPERMPD      $0x40, Y2, Y7    \ // [cw4 cw4 cw4 cw5]
	VMULPD       Y7, Y4, Y5       \
	VADDPD       Y5, Y6, Y8       \
	VBLENDPD     $0x0C, Y8, Y6, Y6

// func bandTri3AVX2(n int, bval, cur, next, d1, d2 *float64)
TEXT ·bandTri3AVX2(SB), NOSPLIT, $0-48
	MOVQ n+0(FP), CX
	MOVQ bval+8(FP), SI
	MOVQ cur+16(FP), DI
	MOVQ next+24(FP), DX
	MOVQ d1+32(FP), R8
	MOVQ d2+40(FP), R9
	VXORPD Y15, Y15, Y15
	TESTQ CX, CX
	JZ   done

loop:
	ROW3
	VMOVUPD Y6, (DX)
	ADDQ $24, SI
	ADDQ $32, DI
	ADDQ $32, DX
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func bandTri3AccAVX2(n int, bval, cur, next, d1, d2, a0, a1, a2, a3 *float64, w float64)
TEXT ·bandTri3AccAVX2(SB), NOSPLIT, $0-88
	MOVQ n+0(FP), CX
	MOVQ bval+8(FP), SI
	MOVQ cur+16(FP), DI
	MOVQ next+24(FP), DX
	MOVQ d1+32(FP), R8
	MOVQ d2+40(FP), R9
	MOVQ a0+48(FP), R10
	MOVQ a1+56(FP), R11
	MOVQ a2+64(FP), R12
	MOVQ a3+72(FP), R13
	VBROADCASTSD w+80(FP), Y14
	VXORPD Y15, Y15, Y15
	TESTQ CX, CX
	JZ   accdone

accloop:
	ROW3
	VMOVUPD Y6, (DX)

	// Poisson accumulation a_j[i] += w*s_j: one rounding for the product
	// (vmulpd) and one scalar add per planar accumulator lane, exactly
	// the scalar kernel's sequence. VEX encodings throughout — a legacy
	// movsd/addsd here would force an SSE/AVX state transition per row.
	VMULPD       Y6, Y14, Y5      // [w*s0 w*s1 w*s2 w*s3]
	VEXTRACTF128 $1, Y5, X7       // [w*s2 w*s3]
	VADDSD       (R10), X5, X9
	VMOVSD       X9, (R10)
	VUNPCKHPD    X5, X5, X8
	VADDSD       (R11), X8, X9
	VMOVSD       X9, (R11)
	VADDSD       (R12), X7, X9
	VMOVSD       X9, (R12)
	VUNPCKHPD    X7, X7, X8
	VADDSD       (R13), X8, X9
	VMOVSD       X9, (R13)

	ADDQ $24, SI
	ADDQ $32, DI
	ADDQ $32, DX
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	DECQ CX
	JNZ  accloop

accdone:
	VZEROUPPER
	RET
