package sparse

import "fmt"

// This file implements the matrix-free Kronecker-sum operator behind
// composed models. The joint generator of F independent CTMCs is the
// Kronecker sum Q = Q_1 ⊕ Q_2 ⊕ ... ⊕ Q_F over the product state space
// (n = Π n_f states): every stored entry of the product matrix is a
// single factor's off-diagonal rate placed at offset (j-i)·stride_f, plus
// a diagonal that is the sum of the factor diagonals. Materializing that
// CSR costs O(n · Σ m_f) memory — 50M+ entries for six 10-state factors —
// while the factors themselves cost O(Σ n_f m_f). KronSum stores only the
// factors and applies the *uniformized* product operator
//
//	A = (Q_1 ⊕ ... ⊕ Q_F)/q + I
//
// row by row, which is what lets composed models far beyond explicit
// storage run on the same sweep kernels.
//
// Bitwise contract with the materialized reference
// (ctmc.Generator.Uniformized of the composed CSR):
//
//   - Stored values: materialization scales each entry to fl(v/q·...) —
//     concretely CSR.Scaled(1/q) computes fl(invq·v) with invq = fl(1/q)
//     — and the AddDiagonal rebuild drops entries whose scaled value is
//     exactly zero. KronSum stores the identically computed fl(invq·v)
//     per factor entry and drops exact zeros at construction.
//   - Column order: within a product row, the factor-f sub-diagonal
//     entries occupy columns s-(i_f-k)·stride_f with stride_0 > stride_1
//     > ... ; since (n_f-1)·stride_f < stride_{f-1}, all of factor f's
//     sub-diagonal columns lie strictly between factor f-1's and factor
//     f+1's. Walking sub segments for f = 0..F-1 (each ascending), then
//     the diagonal, then super segments for f = F-1..0 therefore visits
//     columns in strictly ascending order — the CSR reference order.
//   - Diagonal: the composed raw diagonal is the float sum of the factor
//     diagonals folded in the shape of the composition tree (the CSR
//     builder merges duplicate (i,i) triplets in Add order), captured
//     here as a postfix fold program. The uniformized diagonal is then
//     fl(fl(dsum·invq) + 1), matching Scaled followed by AddDiagonal's
//     duplicate merge; a result of exactly zero is skipped, matching the
//     builder dropping zero sums. Factors whose diagonal is unstored
//     contribute +0.0 to the fold, which is bitwise neutral because
//     partial sums of non-positive generator diagonals never produce
//     -0.0.
//
// MatVecRange walks the product rows with an odometer over the factor
// coordinates, so a row costs O(Σ m_f(i_f)) with zero per-row index
// memory beyond the factor CSRs.

// Fold program opcodes for the Kronecker-sum diagonal (see NewKronSum).
const (
	// KronFoldPush pushes the next factor's diagonal entry (factors are
	// consumed left to right).
	KronFoldPush byte = iota
	// KronFoldAdd pops the top two partial sums x (below) and y (top) and
	// pushes x+y.
	KronFoldAdd
)

// MaxKronFactors bounds the factor count of a KronSum. Sixteen two-state
// factors already span 65,536 product states; the bound keeps the
// per-row coordinate and fold stacks in fixed-size arrays.
const MaxKronFactors = 16

// kronFactor is one factor's contribution to the product operator: the
// uniformization-scaled off-diagonal entries of its generator, split at
// the diagonal and re-indexed as product-space offsets, plus the raw
// diagonal for the fold.
type kronFactor struct {
	n      int
	stride int
	rowPtr []int     // off-diagonal entry range of row i: [rowPtr[i], rowPtr[i+1])
	split  []int     // sub-diagonal entries end (and super-diagonal start) of row i
	off    []int     // product-index offset (j-i)*stride per entry
	val    []float64 // fl(invq·raw) per entry; exact zeros dropped
	diag   []float64 // raw diagonal value of row i (+0.0 when unstored)
}

// KronSum is the matrix-free uniformized Kronecker-sum operator
// A = (Q_1 ⊕ ... ⊕ Q_F)/q + I over the row-major product state space
// (state (i_1, ..., i_F) has index ((i_1·n_2 + i_2)·n_3 + ...)·n_F + i_F,
// i.e. i*nb+j for two factors). It implements Operator.
type KronSum struct {
	n    int
	invq float64
	fs   []kronFactor
	fold []byte
	nnz  int64
}

// NewKronSum builds the uniformized Kronecker-sum operator of the given
// square factor matrices (generator matrices; their validity is the
// caller's concern) at uniformization rate q > 0.
//
// fold is the postfix program that folds the factor diagonals into the
// product diagonal: KronFoldPush consumes the next factor (left to
// right), KronFoldAdd sums the top two partial results. It encodes the
// parenthesization of the composition tree, whose shape the float64 sum
// observes; nil means the left fold ((d_1+d_2)+d_3)+..., which is what a
// left-leaning composition chain (ComposeAll) produces.
func NewKronSum(factors []*CSR, fold []byte, q float64) (*KronSum, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("%w: kron sum of no factors", ErrDimensionMismatch)
	}
	if len(factors) > MaxKronFactors {
		return nil, fmt.Errorf("%w: %d kron factors exceed the limit of %d", ErrDimensionMismatch, len(factors), MaxKronFactors)
	}
	if !(q > 0) {
		return nil, fmt.Errorf("%w: kron uniformization rate %g", ErrDimensionMismatch, q)
	}
	n := 1
	for fi, m := range factors {
		if m == nil || m.rows != m.cols || m.rows == 0 {
			return nil, fmt.Errorf("%w: kron factor %d", ErrDimensionMismatch, fi)
		}
		if m.rows > (1<<62)/n {
			return nil, fmt.Errorf("%w: kron product dimension overflow", ErrDimensionMismatch)
		}
		n *= m.rows
	}
	if fold == nil {
		fold = make([]byte, 0, 2*len(factors)-1)
		fold = append(fold, KronFoldPush)
		for i := 1; i < len(factors); i++ {
			fold = append(fold, KronFoldPush, KronFoldAdd)
		}
	} else {
		fold = append([]byte(nil), fold...)
	}
	if err := validateFold(fold, len(factors)); err != nil {
		return nil, err
	}

	k := &KronSum{n: n, invq: 1 / q, fold: fold, fs: make([]kronFactor, len(factors))}
	stride := n
	var offTotal int64
	for fi, m := range factors {
		nf := m.rows
		stride /= nf
		f := kronFactor{
			n:      nf,
			stride: stride,
			rowPtr: make([]int, nf+1),
			split:  make([]int, nf),
			diag:   make([]float64, nf),
		}
		for i := 0; i < nf; i++ {
			f.split[i] = len(f.off) // advanced past the sub-diagonal entries below
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				j := m.colIdx[p]
				if j == i {
					f.diag[i] = m.val[p]
					continue
				}
				// Scale exactly as CSR.Scaled(1/q); drop exact zeros the
				// way the AddDiagonal rebuild would.
				v := k.invq * m.val[p]
				if v == 0 {
					continue
				}
				if j < i {
					f.split[i]++
				}
				f.off = append(f.off, (j-i)*stride)
				f.val = append(f.val, v)
			}
			f.rowPtr[i+1] = len(f.off)
		}
		// Each factor entry appears once per combination of the other
		// factors' coordinates.
		offTotal += int64(len(f.val)) * int64(n/nf)
		k.fs[fi] = f
	}
	// Count the diagonal as stored in every row: it vanishes only when
	// fl(fl(dsum·invq)+1) is exactly zero, which needs q to be a power of
	// two hit exactly by a row's diagonal fold. NNZ feeds flop estimates
	// and work partitioning, where that corner is immaterial.
	k.nnz = offTotal + int64(n)
	return k, nil
}

// validateFold checks the postfix program's stack discipline.
func validateFold(fold []byte, factors int) error {
	pushes, depth := 0, 0
	for _, op := range fold {
		switch op {
		case KronFoldPush:
			pushes++
			depth++
		case KronFoldAdd:
			if depth < 2 {
				return fmt.Errorf("%w: kron fold underflow", ErrDimensionMismatch)
			}
			depth--
		default:
			return fmt.Errorf("%w: kron fold opcode %d", ErrDimensionMismatch, op)
		}
	}
	if pushes != factors || depth != 1 {
		return fmt.Errorf("%w: kron fold folds %d of %d factors to depth %d", ErrDimensionMismatch, pushes, factors, depth)
	}
	return nil
}

// Rows returns the product dimension Π n_f.
func (k *KronSum) Rows() int { return k.n }

// OpNNZ returns the effective entry count of the materialized operator
// (the diagonal counted as always present; see NewKronSum).
func (k *KronSum) OpNNZ() int64 { return k.nnz }

// OpFormat returns FormatKron.
func (k *KronSum) OpFormat() MatrixFormat { return FormatKron }

// Factors returns the factor count.
func (k *KronSum) Factors() int { return len(k.fs) }

// Dims returns the factor dimensions in order.
func (k *KronSum) Dims() []int {
	dims := make([]int, len(k.fs))
	for i := range k.fs {
		dims[i] = k.fs[i].n
	}
	return dims
}

// MemoryBytes returns the operator's storage footprint: the scaled factor
// entries, offsets and row structure — O(Σ n_f + Σ m_f), independent of
// the product dimension.
func (k *KronSum) MemoryBytes() int64 {
	var b int64
	for i := range k.fs {
		f := &k.fs[i]
		b += int64(len(f.rowPtr))*8 + int64(len(f.split))*8 +
			int64(len(f.off))*8 + int64(len(f.val))*8 + int64(len(f.diag))*8
	}
	return b + int64(len(k.fold))
}

// RowCost returns row i's entry count (off-diagonal factor entries plus
// the diagonal) for nnz-balanced partitioning.
func (k *KronSum) RowCost(i int) int64 {
	var c int64 = 1
	for fi := len(k.fs) - 1; fi >= 0; fi-- {
		f := &k.fs[fi]
		ci := i % f.n
		i /= f.n
		c += int64(f.rowPtr[ci+1] - f.rowPtr[ci])
	}
	return c
}

// partitionKron splits a Kronecker-sum sweep's product rows into
// contiguous blocks of roughly equal entry cost. It produces exactly the
// cuts partitionRows would over rowBase + RowCost(i) — same integer cut
// condition against the same exact total — but in a single odometer pass:
// the total is closed-form (each factor entry appears once per
// combination of the other factors' coordinates) and the per-row cost is
// patched incrementally as the odometer advances, so the whole partition
// is O(n + Σ n_f) instead of the O(n·F) coordinate decodes (and their F
// divisions per row) the generic RowCost path repeats.
func partitionKron(k *KronSum, workers int) []int {
	n := k.n
	total := int64(n) * int64(rowBase+1)
	for fi := range k.fs {
		f := &k.fs[fi]
		total += int64(len(f.val)) * int64(n/f.n)
	}
	blocks := make([]int, workers+1)
	blocks[workers] = n
	nf := len(k.fs)
	var cbuf [MaxKronFactors]int
	var ebuf [MaxKronFactors]int64
	coords := cbuf[:nf]
	ec := ebuf[:nf]
	rowSum := int64(rowBase + 1)
	for fi := range k.fs {
		f := &k.fs[fi]
		ec[fi] = int64(f.rowPtr[1] - f.rowPtr[0])
		rowSum += ec[fi]
	}
	b := 1
	var cum int64
	for i := 0; i < n && b < workers; i++ {
		cum += rowSum
		// Cut after row i once this block reached its share of the total
		// (the partitionRows condition, verbatim).
		for b < workers && cum*int64(workers) >= int64(b)*total {
			blocks[b] = i + 1
			b++
		}
		// Advance the odometer, patching only the factors whose coordinate
		// changed — amortized O(1) per row, since factor fi rolls over once
		// every Π_{g>fi} n_g rows.
		for fi := nf - 1; fi >= 0; fi-- {
			f := &k.fs[fi]
			c := coords[fi] + 1
			if c == f.n {
				c = 0
			}
			coords[fi] = c
			rowSum -= ec[fi]
			ec[fi] = int64(f.rowPtr[c+1] - f.rowPtr[c])
			rowSum += ec[fi]
			if c != 0 {
				break
			}
		}
	}
	for ; b < workers; b++ {
		blocks[b] = n
	}
	return blocks
}

// decode fills coords with the factor coordinates of product state s.
func (k *KronSum) decode(s int, coords []int) {
	for fi := len(k.fs) - 1; fi >= 0; fi-- {
		nf := k.fs[fi].n
		coords[fi] = s % nf
		s /= nf
	}
}

// inc advances coords to the next product state (row-major odometer).
func (k *KronSum) inc(coords []int) {
	for fi := len(k.fs) - 1; fi >= 0; fi-- {
		coords[fi]++
		if coords[fi] < k.fs[fi].n {
			return
		}
		coords[fi] = 0
	}
}

// diagValue evaluates the uniformized diagonal of the row at coords:
// fl(fl(fold(raw diagonals)·invq) + 1). stack must have capacity for the
// fold depth (MaxKronFactors suffices). A result of exactly zero means
// the materialized matrix stores no diagonal entry for this row.
func (k *KronSum) diagValue(coords []int, stack []float64) float64 {
	next, depth := 0, 0
	for _, op := range k.fold {
		if op == KronFoldPush {
			stack[depth] = k.fs[next].diag[coords[next]]
			next++
			depth++
		} else {
			depth--
			stack[depth-1] += stack[depth]
		}
	}
	// The explicit conversion pins the intermediate rounding (no fused
	// multiply-add), matching the materialized Scaled-then-AddDiagonal
	// sequence on every architecture.
	return float64(stack[0]*k.invq) + 1
}

// MatVecRange computes y[i] = (A·x)[i] for lo <= i < hi in the CSR
// reference accumulation order (ascending columns, sum from +0.0); see
// the file comment for why this is bitwise identical to the materialized
// uniformized product CSR.
func (k *KronSum) MatVecRange(lo, hi int, x, y []float64) {
	nf := len(k.fs)
	var cbuf [MaxKronFactors]int
	var sbuf [MaxKronFactors]float64
	coords := cbuf[:nf]
	stack := sbuf[:nf]
	k.decode(lo, coords)
	for s := lo; s < hi; s++ {
		var sum float64
		for fi := 0; fi < nf; fi++ {
			f := &k.fs[fi]
			c := coords[fi]
			for p := f.rowPtr[c]; p < f.split[c]; p++ {
				sum += f.val[p] * x[s+f.off[p]]
			}
		}
		if dv := k.diagValue(coords, stack); dv != 0 {
			sum += dv * x[s]
		}
		for fi := nf - 1; fi >= 0; fi-- {
			f := &k.fs[fi]
			c := coords[fi]
			for p := f.split[c]; p < f.rowPtr[c+1]; p++ {
				sum += f.val[p] * x[s+f.off[p]]
			}
		}
		y[s] = sum
		k.inc(coords)
	}
}

// fuseBlock3Kron is fuseBlock3 streaming the Kronecker-sum operator on
// the interleaved (unpadded) state layout: per product row it walks the
// factor sub segments in ascending factor order, the folded diagonal,
// then the super segments in descending factor order — the ascending
// column walk of the materialized CSR — with each entry gathering the
// four interleaved moment values. Operation sequence per output element
// is identical to the reference sweep over the materialized matrix.
func (s *Sweep) fuseBlock3Kron(lo, hi int, cur4, next4 []float64, active []accPair) {
	ks := s.kron
	nf := len(ks.fs)
	var cbuf [MaxKronFactors]int
	var sbuf [MaxKronFactors]float64
	coords := cbuf[:nf]
	stack := sbuf[:nf]
	ks.decode(lo, coords)
	d1, d2 := s.diag1, s.diag2
	var w float64
	var a0, a1, a2, a3 []float64
	if len(active) == 1 {
		w = active[0].w
		a0, a1, a2, a3 = active[0].acc[0], active[0].acc[1], active[0].acc[2], active[0].acc[3]
	}
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3 float64
		for fi := 0; fi < nf; fi++ {
			f := &ks.fs[fi]
			c := coords[fi]
			for p := f.rowPtr[c]; p < f.split[c]; p++ {
				v := f.val[p]
				c4 := (i + f.off[p]) * 4
				cv := cur4[c4 : c4+4 : c4+4]
				s3 += v * cv[3]
				s2 += v * cv[2]
				s1 += v * cv[1]
				s0 += v * cv[0]
			}
		}
		civ := cur4[i*4 : i*4+4 : i*4+4]
		if dv := ks.diagValue(coords, stack); dv != 0 {
			s3 += dv * civ[3]
			s2 += dv * civ[2]
			s1 += dv * civ[1]
			s0 += dv * civ[0]
		}
		for fi := nf - 1; fi >= 0; fi-- {
			f := &ks.fs[fi]
			c := coords[fi]
			for p := f.split[c]; p < f.rowPtr[c+1]; p++ {
				v := f.val[p]
				c4 := (i + f.off[p]) * 4
				cv := cur4[c4 : c4+4 : c4+4]
				s3 += v * cv[3]
				s2 += v * cv[2]
				s1 += v * cv[1]
				s0 += v * cv[0]
			}
		}
		d1i, d2i := d1[i], d2[i]
		s3 += d1i * civ[2]
		s3 += d2i * civ[1]
		s2 += d1i * civ[1]
		s2 += d2i * civ[0]
		s1 += d1i * civ[0]
		nv := next4[i*4 : i*4+4 : i*4+4]
		nv[0], nv[1], nv[2], nv[3] = s0, s1, s2, s3
		switch {
		case a0 != nil:
			a0[i] += w * s0
			a1[i] += w * s1
			a2[i] += w * s2
			a3[i] += w * s3
		case len(active) > 1:
			for _, ap := range active {
				wp := ap.w
				ap.acc[0][i] += wp * s0
				ap.acc[1][i] += wp * s1
				ap.acc[2][i] += wp * s2
				ap.acc[3][i] += wp * s3
			}
		}
		ks.inc(coords)
	}
}
