//go:build amd64

package sparse

// hasAVX2 reports whether the CPU and OS support the 4-lane double
// vector (AVX2 + OS-enabled YMM state) the tridiagonal band kernel's
// assembly fast path needs. Detected once at startup; the scalar Go loop
// remains the fallback and the bitwise reference.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must have enabled XMM and YMM state saving (XCR0 bits 1-2),
	// or executing VEX-encoded instructions faults.
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
func xgetbv0() (eax, edx uint32)

// bandTri3AVX2 is the assembly body of fuseBlock3Band's tridiagonal fast
// path for n rows with no Poisson accumulation: pointers are pre-offset
// to the first row's band triple (bval), state window (cur, at the row's
// cur4[i*4]), output (next, at next4[4+i*4]), and order-coupling
// diagonals. Each lane executes exactly the scalar loop's operation
// sequence with the same IEEE rounding (vmulpd/vaddpd, never fused), so
// results are bitwise identical to the Go code.
//
//go:noescape
func bandTri3AVX2(n int, bval, cur, next, d1, d2 *float64)

// bandTri3AccAVX2 is bandTri3AVX2 fused with the single-plan Poisson
// accumulation acc[j][i] += w*s_j into the four planar accumulator rows.
//
//go:noescape
func bandTri3AccAVX2(n int, bval, cur, next, d1, d2, a0, a1, a2, a3 *float64, w float64)
