package sparse

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// runOrder3 runs one order-3 impulse-free sweep (the interleaved hot
// shape) with a single full-window plan and returns the accumulators, so
// the kernel-label and forced-dispatch tests share a body.
func runOrder3(t *testing.T, s *Sweep, gMax int, wseed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(wseed))
	w := make([]float64, gMax+1)
	for k := range w {
		w[k] = rng.Float64()
	}
	cur, next, plans := newRunState(s, [][]float64{w}, []int{0}, []int{gMax})
	if _, err := s.Run(context.Background(), gMax, cur, next, plans, 32); err != nil {
		t.Fatal(err)
	}
	return plans[0].Acc
}

// TestSweepSIMDKillSwitches pins the dispatch gate: the SOMRM_NOSIMD
// environment variable and SetNoSIMD both force the scalar kernels (and
// the Kernel label says so), "0"/unset restore the hardware default, and
// the label flips back when the switch is released.
func TestSweepSIMDKillSwitches(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a, d1, d2 := bandedSweepFixture(t, rng, 96, 1, 1, 3)

	hw := KernelScalar
	if SIMDAvailable() {
		hw = KernelAVX2
	}

	t.Run("env-set", func(t *testing.T) {
		t.Setenv("SOMRM_NOSIMD", "1")
		s, err := NewSweepWithFormat(a, d1, d2, nil, 3, 1, FormatBand)
		if err != nil {
			t.Fatal(err)
		}
		runOrder3(t, s, 12, 1)
		if got := s.Kernel(); got != KernelScalar {
			t.Fatalf("Kernel() = %q with SOMRM_NOSIMD=1, want %q", got, KernelScalar)
		}
	})

	t.Run("env-zero", func(t *testing.T) {
		t.Setenv("SOMRM_NOSIMD", "0")
		s, err := NewSweepWithFormat(a, d1, d2, nil, 3, 1, FormatBand)
		if err != nil {
			t.Fatal(err)
		}
		runOrder3(t, s, 12, 1)
		if got := s.Kernel(); got != hw {
			t.Fatalf("Kernel() = %q with SOMRM_NOSIMD=0, want hardware default %q", got, hw)
		}
	})

	t.Run("setter", func(t *testing.T) {
		s, err := NewSweepWithFormat(a, d1, d2, nil, 3, 1, FormatBand)
		if err != nil {
			t.Fatal(err)
		}
		s.SetNoSIMD(true)
		runOrder3(t, s, 12, 1)
		if got := s.Kernel(); got != KernelScalar {
			t.Fatalf("Kernel() = %q after SetNoSIMD(true), want %q", got, KernelScalar)
		}
		s.SetNoSIMD(false)
		runOrder3(t, s, 12, 1)
		if got := s.Kernel(); got != hw {
			t.Fatalf("Kernel() = %q after SetNoSIMD(false), want hardware default %q", got, hw)
		}
	})

	t.Run("reference-always-scalar", func(t *testing.T) {
		s, err := NewSweepWithFormat(a, d1, d2, nil, 3, 1, FormatBand)
		if err != nil {
			t.Fatal(err)
		}
		cur, next, plans := newRunState(s, [][]float64{make([]float64, 13)}, []int{0}, []int{12})
		if _, err := s.RunReference(context.Background(), 12, cur, next, plans, 32); err != nil {
			t.Fatal(err)
		}
		if got := s.Kernel(); got != KernelScalar {
			t.Fatalf("Kernel() = %q after RunReference, want %q", got, KernelScalar)
		}
	})
}

// TestSweepKernelLabel pins which run shapes the dispatcher labels as
// served by the vector kernels: exactly the order-3 interleaved layouts
// with an assembly body (tridiagonal band, non-empty CSR32, QBD with an
// interior level), scalar for everything else even with the gate open.
func TestSweepKernelLabel(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX2 support on this host; labels are pinned scalar by TestSweepSIMDKillSwitches")
	}
	rng := rand.New(rand.NewSource(72))

	// A 2-level block-tridiagonal matrix: entry (0, 15) forces reach 15,
	// so QBDBlock resolves b = 8 and there is no interior level for the
	// assembly body (n < 3b).
	twoLevel := func() *CSR {
		b := NewBuilder(16, 16)
		for i := 0; i < 16; i++ {
			if err := b.Add(i, i, rng.Float64()+0.1); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Add(0, 15, 0.5); err != nil {
			t.Fatal(err)
		}
		return b.Build()
	}()

	cases := []struct {
		name       string
		a          *CSR
		format     MatrixFormat
		wantFormat MatrixFormat
		order      int
		want       string
	}{
		{"band-tridiagonal", bandedFixture(t, rng, 96, 1, 1), FormatBand, FormatBand, 3, KernelAVX2},
		{"band-wide", bandedFixture(t, rng, 96, 3, 3), FormatBand, FormatBand, 3, KernelScalar},
		{"csr32", bandedFixture(t, rng, 96, 1, 1), FormatCSR, FormatCSR32, 3, KernelAVX2},
		{"csr64", bandedFixture(t, rng, 96, 1, 1), FormatCSR64, FormatCSR64, 3, KernelScalar},
		{"qbd-interior", qbdFixture(t, rng, 12, 8), FormatQBD, FormatQBD, 3, KernelAVX2},
		{"qbd-two-level", twoLevel, FormatQBD, FormatQBD, 3, KernelScalar},
		{"planar-order2", bandedFixture(t, rng, 96, 1, 1), FormatCSR, FormatCSR32, 2, KernelScalar},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d1 := make([]float64, tc.a.rows)
			d2 := make([]float64, tc.a.rows)
			for i := range d1 {
				d1[i] = rng.Float64()*2 - 1
				d2[i] = rng.Float64()
			}
			s, err := NewSweepWithFormat(tc.a, d1, d2, nil, tc.order, 1, tc.format)
			if err != nil {
				t.Fatal(err)
			}
			if s.Format() != tc.wantFormat {
				t.Fatalf("format %q resolved to %q, want %q", tc.format, s.Format(), tc.wantFormat)
			}
			runOrder3(t, s, 10, 2)
			if got := s.Kernel(); got != tc.want {
				t.Fatalf("Kernel() = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestSweepForcedSIMDMatchesForcedScalar is the in-package half of the
// SIMD difftest gate: over a 50-seed corpus rotating the three vector
// formats (band, CSR32, QBD), worker counts, temporal blocking, and
// multi-plan windows, a forced-SIMD sweep and a forced-scalar sweep over
// identical inputs must agree bit for bit. On hosts without AVX2 both
// runs take the scalar path and the test degenerates to a determinism
// check.
func TestSweepForcedSIMDMatchesForcedScalar(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		var (
			a      *CSR
			format MatrixFormat
		)
		n := 32 + rng.Intn(160)
		switch seed % 3 {
		case 0:
			a, format = bandedFixture(t, rng, n, 1, 1), FormatBand
		case 1:
			a, format = bandedFixture(t, rng, n, rng.Intn(3), rng.Intn(3)), FormatCSR
		default:
			b := 2 + rng.Intn(7)
			a, format = qbdFixture(t, rng, 3+rng.Intn(8), b), FormatQBD
		}
		n = a.rows
		d1 := make([]float64, n)
		d2 := make([]float64, n)
		for i := range d1 {
			d1[i] = rng.Float64()*2 - 1
			d2[i] = rng.Float64()
		}

		gMax := 4 + rng.Intn(24)
		nPlans := 1 + rng.Intn(3)
		weights := make([][]float64, nPlans)
		firsts := make([]int, nPlans)
		lasts := make([]int, nPlans)
		for pi := range weights {
			w := make([]float64, gMax+1)
			for k := range w {
				if rng.Float64() < 0.85 {
					w[k] = rng.Float64()
				}
			}
			weights[pi] = w
			firsts[pi] = rng.Intn(gMax + 1)
			lasts[pi] = firsts[pi] + rng.Intn(gMax+1-firsts[pi])
		}
		workers := 1 + rng.Intn(4)
		tblock := []int{0, 1, 4}[rng.Intn(3)]

		run := func(nosimd bool) ([][][]float64, string) {
			s, err := NewSweepWithFormat(a, d1, d2, nil, 3, workers, format)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			s.SetNoSIMD(nosimd)
			s.SetTemporalBlock(tblock)
			cur, next, plans := newRunState(s, weights, firsts, lasts)
			if _, err := s.Run(context.Background(), gMax, cur, next, plans, 32); err != nil {
				t.Fatalf("seed %d nosimd %v: %v", seed, nosimd, err)
			}
			accs := make([][][]float64, nPlans)
			for pi := range plans {
				accs[pi] = plans[pi].Acc
			}
			return accs, s.Kernel()
		}

		simdAccs, simdKernel := run(false)
		scalarAccs, scalarKernel := run(true)
		if scalarKernel != KernelScalar {
			t.Fatalf("seed %d: forced-scalar run reported kernel %q", seed, scalarKernel)
		}
		_ = simdKernel
		for pi := range simdAccs {
			for j := range simdAccs[pi] {
				for i := range simdAccs[pi][j] {
					got, want := simdAccs[pi][j][i], scalarAccs[pi][j][i]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("seed %d format %q workers %d tblock %d (simd kernel %q): plan %d acc[%d][%d] = %x, scalar %x",
							seed, format, workers, tblock, simdKernel, pi, j, i,
							math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		}
	}
}
