package sparse

// QBD is a block-tridiagonal (quasi-birth-death) view of a square CSR
// matrix: the n states split into n/b levels of b phases each, and every
// stored entry couples a level only to itself or its two neighbours.
// Row i stores a dense window of 3b cells — the sub-diagonal, diagonal
// and super-diagonal blocks — so the kernel computes column positions
// from the level index instead of loading them, like Band, but for
// matrices whose coupling is block-local rather than scalar-local: a
// level of b dense-ish phases has bandwidth up to 2b-1, which blows past
// the band policy long before the 3b-cell QBD window stops paying.
//
// Val[i*3b + k] holds entry (i, (i/b-1)*b + k); cells outside the matrix
// (boundary levels) or without a stored CSR entry hold +0.0, which is
// bitwise neutral in the sweep's row accumulation by exactly the
// argument in band.go's file comment.
type QBD struct {
	n, b int
	nnz  int64 // stored entries of the source CSR
	val  []float64
}

// N returns the matrix dimension.
func (q *QBD) N() int { return q.n }

// Block returns the phase count b (the block size).
func (q *QBD) Block() int { return q.b }

// MatVec computes y = q*x with the same per-row ascending-column
// accumulation order as CSR.MatVec; for finite x the results are bitwise
// identical (padded cells are +0.0 and bitwise neutral, see band.go).
func (q *QBD) MatVec(x, y []float64) { q.matVecRange(0, q.n, x, y) }

func (q *QBD) matVecRange(lo, hi int, x, y []float64) {
	b, w := q.b, 3*q.b
	last := q.n/b - 1
	for i := lo; i < hi; i++ {
		blk := i / b
		row := q.val[i*w : i*w+w]
		k0, k1 := 0, w
		if blk == 0 {
			k0 = b
		}
		if blk == last {
			k1 = 2 * b
		}
		base := (blk - 1) * b
		var sum float64
		for k := k0; k < k1; k++ {
			sum += row[k] * x[base+k]
		}
		y[i] = sum
	}
}

// ToCSR expands the QBD back into a CSR matrix, dropping the padded zero
// cells. Because the QBD stores every source entry at its exact value
// and the builder's stable sort keeps ascending columns, the round trip
// reproduces the source structure and values exactly.
func (q *QBD) ToCSR() *CSR {
	bld := NewBuilder(q.n, q.n)
	b, w := q.b, 3*q.b
	for i := 0; i < q.n; i++ {
		base := (i/b - 1) * b
		for k := 0; k < w; k++ {
			if j := base + k; j >= 0 && j < q.n {
				bld.Add(i, j, q.val[i*w+k])
			}
		}
	}
	return bld.Build()
}

// Operator implementation, so QBD-backed sweeps share the generic
// streaming paths (reference mode, partitioning).

func (q *QBD) Rows() int                              { return q.n }
func (q *QBD) OpNNZ() int64                           { return q.nnz }
func (q *QBD) OpFormat() MatrixFormat                 { return FormatQBD }
func (q *QBD) MatVecRange(lo, hi int, x, y []float64) { q.matVecRange(lo, hi, x, y) }

// RowCost charges each row its streamed window (boundary levels stream
// two blocks, interior levels three) — the QBD analogue of the CSR
// rowPtr delta.
func (q *QBD) RowCost(i int) int64 {
	blk := i / q.b
	if blk == 0 || blk == q.n/q.b-1 {
		return int64(2 * q.b)
	}
	return int64(3 * q.b)
}

// QBD eligibility thresholds, mirroring the band policy: the automatic
// policy converts only when the 3b-cell window is narrow and pays for
// itself against the CSR's value+index traffic; a forced "qbd" format is
// honored up to much larger blocks, with the same small-matrix escape
// hatch so tests and tiny models can always exercise the QBD kernel.
const (
	maxAutoQBDBlock   = 16
	maxForcedQBDBlock = 256
)

// qbdCells returns rows*3b, the storage cost of the QBD representation
// in float64 cells, for block size b.
func (m *CSR) qbdCells(b int) int64 { return int64(m.rows) * int64(3*b) }

// QBDBlock returns the smallest block size b dividing n for which every
// stored entry (i, j) satisfies |i/b - j/b| <= 1, capped at
// maxForcedQBDBlock, or 0 when no such b exists. The result is computed
// once and cached. Note b = n always qualifies (a single level), so
// small matrices always detect; the eligibility policy is what keeps the
// degenerate dense window from being picked in anger.
func (m *CSR) QBDBlock() int {
	d := m.derived()
	d.qbdOnce.Do(func() {
		if m.rows != m.cols || m.rows == 0 {
			return
		}
		lo, hi := m.Bandwidth()
		reach := lo
		if hi > reach {
			reach = hi
		}
		// An entry at distance r needs 2b-1 >= r to land in an adjacent
		// block even in the best alignment, so b < (r+1)/2 can never work.
		minB := (reach + 2) / 2
		if minB < 1 {
			minB = 1
		}
		for b := minB; b <= m.rows && b <= maxForcedQBDBlock; b++ {
			if m.rows%b == 0 && m.qbdValid(b) {
				d.qbdB = b
				return
			}
		}
	})
	return d.qbdB
}

// qbdValid reports whether block size b (dividing rows) keeps every
// stored entry within adjacent blocks. Columns are ascending within a
// row, so only each row's first and last entry need checking.
func (m *CSR) qbdValid(b int) bool {
	for i := 0; i < m.rows; i++ {
		s, e := m.rowPtr[i], m.rowPtr[i+1]
		if s == e {
			continue
		}
		blk := i / b
		if m.colIdx[s] < (blk-1)*b || m.colIdx[e-1] >= (blk+2)*b {
			return false
		}
	}
	return true
}

// qbdEligible reports whether the QBD representation should be used for
// this matrix under the given policy (forced = the caller explicitly
// requested "qbd" rather than "auto").
func (m *CSR) qbdEligible(forced bool) bool {
	b := m.QBDBlock()
	if b == 0 {
		return false
	}
	cells, nnz := m.qbdCells(b), int64(m.NNZ())
	if forced {
		return b <= maxForcedQBDBlock && (cells <= 4*nnz || cells <= smallBandCells)
	}
	return b <= maxAutoQBDBlock && cells <= 2*nnz
}

// QBDRep returns the cached QBD representation, building it on first
// call, or nil when QBDBlock found no valid block size. Callers gate on
// qbdEligible (or accept the O(rows*3b) memory cost knowingly).
func (m *CSR) QBDRep() *QBD {
	b := m.QBDBlock()
	if b == 0 {
		return nil
	}
	d := m.derived()
	d.qbdRepOnce.Do(func() {
		w := 3 * b
		q := &QBD{n: m.rows, b: b, nnz: int64(m.NNZ()),
			val: make([]float64, m.rows*w)}
		for i := 0; i < m.rows; i++ {
			base := (i/b - 1) * b
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				q.val[i*w+(m.colIdx[p]-base)] = m.val[p]
			}
		}
		d.qbdRep = q
	})
	return d.qbdRep
}

// fuseBlock3QBD is the order-3/no-impulse fused kernel over the QBD
// window and the interleaved (unpadded) state layout: per row it streams
// the dense 3b-cell window (clipped at boundary levels), gathering four
// interleaved moment values per cell. Padded cells contribute 0.0
// products, bitwise neutral per band.go; the per-element operation
// sequence otherwise matches fuseBlock3 exactly.
func (s *Sweep) fuseBlock3QBD(lo, hi int, cur4, next4 []float64, active []accPair) {
	qb := s.qbd
	b, w := qb.b, 3*qb.b
	last := qb.n/b - 1
	d1, d2 := s.diag1, s.diag2
	var wgt float64
	var a0, a1, a2, a3 []float64
	if len(active) == 1 {
		wgt = active[0].w
		a0, a1, a2, a3 = active[0].acc[0], active[0].acc[1], active[0].acc[2], active[0].acc[3]
	}
	for i := lo; i < hi; i++ {
		blk := i / b
		row := qb.val[i*w : i*w+w]
		k0, k1 := 0, w
		if blk == 0 {
			k0 = b
		}
		if blk == last {
			k1 = 2 * b
		}
		base4 := ((blk-1)*b + k0) * 4
		var s0, s1, s2, s3 float64
		for k := k0; k < k1; k++ {
			v := row[k]
			c4 := base4 + (k-k0)*4
			cv := cur4[c4 : c4+4 : c4+4]
			s3 += v * cv[3]
			s2 += v * cv[2]
			s1 += v * cv[1]
			s0 += v * cv[0]
		}
		civ := cur4[i*4 : i*4+4 : i*4+4]
		d1i, d2i := d1[i], d2[i]
		s3 += d1i * civ[2]
		s3 += d2i * civ[1]
		s2 += d1i * civ[1]
		s2 += d2i * civ[0]
		s1 += d1i * civ[0]
		nv := next4[i*4 : i*4+4 : i*4+4]
		nv[0], nv[1], nv[2], nv[3] = s0, s1, s2, s3
		switch {
		case a0 != nil:
			a0[i] += wgt * s0
			a1[i] += wgt * s1
			a2[i] += wgt * s2
			a3[i] += wgt * s3
		case len(active) > 1:
			for _, ap := range active {
				wp := ap.w
				ap.acc[0][i] += wp * s0
				ap.acc[1][i] += wp * s1
				ap.acc[2][i] += wp * s2
				ap.acc[3][i] += wp * s3
			}
		}
	}
}
