package sparse

import (
	"errors"
	"testing"
)

func TestDiagonalBasics(t *testing.T) {
	d := NewDiagonal([]float64{1, -2, 3})
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.At(1) != -2 {
		t.Errorf("At(1) = %g", d.At(1))
	}
	if d.Max() != 3 || d.Min() != -2 {
		t.Errorf("Max/Min = %g/%g", d.Max(), d.Min())
	}
	if d.NonNegative() {
		t.Error("NonNegative with a negative entry")
	}
	if !NewDiagonal([]float64{0, 1}).NonNegative() {
		t.Error("NonNegative rejected non-negative diagonal")
	}
}

func TestDiagonalCopiesInput(t *testing.T) {
	src := []float64{1, 2}
	d := NewDiagonal(src)
	src[0] = 99
	if d.At(0) != 1 {
		t.Error("NewDiagonal shares caller storage")
	}
	vals := d.Values()
	vals[1] = 77
	if d.At(1) != 2 {
		t.Error("Values shares internal storage")
	}
}

func TestDiagonalMatVec(t *testing.T) {
	d := NewDiagonal([]float64{2, 3})
	y := make([]float64, 2)
	if err := d.MatVec([]float64{4, 5}, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 8 || y[1] != 15 {
		t.Errorf("MatVec = %v", y)
	}
	if err := d.MatVecAdd(2, []float64{1, 1}, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 12 || y[1] != 21 {
		t.Errorf("MatVecAdd = %v", y)
	}
	if err := d.MatVec(make([]float64, 3), y); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MatVec mismatch: %v", err)
	}
	if err := d.MatVecAdd(1, []float64{1, 1}, make([]float64, 1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MatVecAdd mismatch: %v", err)
	}
}

func TestDiagonalScaledShifted(t *testing.T) {
	d := NewDiagonal([]float64{1, 2})
	s := d.Scaled(3)
	if s.At(0) != 3 || s.At(1) != 6 {
		t.Errorf("Scaled = %v", s.Values())
	}
	sh := d.Shifted(1)
	if sh.At(0) != 0 || sh.At(1) != 1 {
		t.Errorf("Shifted = %v", sh.Values())
	}
	// Original unchanged.
	if d.At(0) != 1 {
		t.Error("Scaled/Shifted mutated receiver")
	}
}

func TestDiagonalEmpty(t *testing.T) {
	d := NewDiagonal(nil)
	if d.Max() != 0 || d.Min() != 0 {
		t.Error("empty diagonal Max/Min should be 0")
	}
}
