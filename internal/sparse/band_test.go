package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// bandedFixture builds a random n x n matrix whose entries stay within the
// requested band, with a guaranteed main diagonal so no row is empty.
func bandedFixture(t testing.TB, rng *rand.Rand, n, lo, hi int) *CSR {
	t.Helper()
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if err := b.Add(i, i, rng.Float64()+0.1); err != nil {
			t.Fatal(err)
		}
		for j := i - lo; j <= i+hi; j++ {
			if j < 0 || j >= n || j == i {
				continue
			}
			if rng.Float64() < 0.7 {
				if err := b.Add(i, j, rng.Float64()*2-1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func TestBandwidthKnown(t *testing.T) {
	cases := []struct {
		name           string
		dense          []float64
		n              int
		wantLo, wantHi int
	}{
		{"diagonal", []float64{1, 0, 0, 0, 2, 0, 0, 0, 3}, 3, 0, 0},
		{"tridiagonal", []float64{1, 2, 0, 3, 4, 5, 0, 6, 7}, 3, 1, 1},
		{"lower", []float64{1, 0, 0, 2, 1, 0, 0, 3, 1}, 3, 1, 0},
		{"corner", []float64{1, 0, 5, 0, 1, 0, 0, 0, 1}, 3, 0, 2},
		{"empty", make([]float64, 9), 3, 0, 0},
	}
	for _, c := range cases {
		m, err := NewCSRFromDense(c.n, c.n, c.dense)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := m.Bandwidth()
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("%s: Bandwidth() = (%d, %d), want (%d, %d)", c.name, lo, hi, c.wantLo, c.wantHi)
		}
	}
}

func TestBandRepKnown(t *testing.T) {
	// 4x4 tridiagonal with a hole at (2,1): the band must pad it with zero.
	dense := []float64{
		2, 3, 0, 0,
		4, 5, 6, 0,
		0, 0, 8, 9,
		0, 0, 10, 11,
	}
	m, err := NewCSRFromDense(4, 4, dense)
	if err != nil {
		t.Fatal(err)
	}
	bd := m.BandRep()
	if lo, hi := bd.Bounds(); lo != 1 || hi != 1 {
		t.Fatalf("Bounds() = (%d, %d), want (1, 1)", lo, hi)
	}
	if bd.Width() != 3 || bd.N() != 4 {
		t.Fatalf("Width() = %d, N() = %d", bd.Width(), bd.N())
	}
	wantVal := []float64{
		0, 2, 3, // row 0: column -1 padded
		4, 5, 6,
		0, 8, 9, // hole at (2,1) padded
		10, 11, 0, // row 3: column 4 padded
	}
	for k, want := range wantVal {
		if bd.val[k] != want {
			t.Errorf("val[%d] = %g, want %g", k, bd.val[k], want)
		}
	}
	for i, want := range dense {
		if got := bd.Dense()[i]; got != want {
			t.Errorf("Dense()[%d] = %g, want %g", i, got, want)
		}
	}
	if again := m.BandRep(); again != bd {
		t.Error("BandRep not cached")
	}
}

// TestBandMatVecBoundary pins the boundary clamping: rows whose band
// window sticks out of the matrix must ignore the out-of-range cells.
func TestBandMatVecBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shape := range []struct{ n, lo, hi int }{
		{1, 0, 0}, {2, 1, 1}, {5, 2, 1}, {5, 0, 3}, {8, 4, 4}, {6, 5, 5},
	} {
		m := bandedFixture(t, rng, shape.n, shape.lo, shape.hi)
		bd := m.BandRep()
		x := make([]float64, shape.n)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		want := make([]float64, shape.n)
		got := make([]float64, shape.n)
		if err := m.MatVec(x, want); err != nil {
			t.Fatal(err)
		}
		bd.MatVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d lo=%d hi=%d: band MatVec[%d] = %x, CSR %x",
					shape.n, shape.lo, shape.hi, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

func TestColIdx32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := bandedFixture(t, rng, 40, 3, 5)
	c32 := m.ColIdx32()
	if c32 == nil {
		t.Fatal("ColIdx32 returned nil for a small matrix")
	}
	if len(c32) != m.NNZ() {
		t.Fatalf("len = %d, want %d", len(c32), m.NNZ())
	}
	for k, j := range m.colIdx {
		if int(c32[k]) != j {
			t.Fatalf("col32[%d] = %d, want %d", k, c32[k], j)
		}
	}
	// Cached: same backing array on the second call.
	if again := m.ColIdx32(); &again[0] != &c32[0] {
		t.Error("ColIdx32 not cached")
	}
}

// TestBandEligible pins the adaptive policy: auto accepts only narrow,
// nearly dense bands; forced accepts wider bands and always accepts small
// matrices; non-square never qualifies.
func TestBandEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))

	tri := bandedFixture(t, rng, 500, 1, 1)
	if !tri.bandEligible(false) || !tri.bandEligible(true) {
		t.Error("tridiagonal matrix not band-eligible")
	}

	// A huge-bandwidth matrix (ring wraparound) must be rejected even when
	// forced: n=2000 with a corner entry gives width ≈ 2n.
	b := NewBuilder(2000, 2000)
	for i := 0; i < 2000; i++ {
		_ = b.Add(i, (i+1)%2000, 1)
	}
	ring := b.Build()
	if ring.bandEligible(false) || ring.bandEligible(true) {
		t.Error("ring matrix band-eligible despite full-width band")
	}

	// Sparse inside a moderately wide band: auto must reject (too much
	// padding), forced small-matrix escape hatch must accept.
	b = NewBuilder(100, 100)
	for i := 0; i < 100; i++ {
		_ = b.Add(i, i, 1)
		_ = b.Add(i, min(i+40, 99), 1)
	}
	wide := b.Build()
	if wide.bandEligible(false) {
		t.Error("wide sparse band auto-eligible")
	}
	if !wide.bandEligible(true) {
		t.Error("small wide-band matrix rejected when forced")
	}

	rect, err := NewCSRFromDense(2, 3, []float64{1, 0, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rect.bandEligible(false) || rect.bandEligible(true) {
		t.Error("rectangular matrix band-eligible")
	}
}

func TestParseMatrixFormat(t *testing.T) {
	for in, want := range map[string]MatrixFormat{
		"":      FormatAuto,
		"auto":  FormatAuto,
		"csr":   FormatCSR,
		"csr32": FormatCSR32,
		"band":  FormatBand,
		"csr64": FormatCSR64,
	} {
		got, err := ParseMatrixFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseMatrixFormat(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	if _, err := ParseMatrixFormat("dense"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestResolveStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tri := bandedFixture(t, rng, 200, 1, 1)

	// Big enough that the ring's full-width band exceeds even the forced
	// limit (width 2001 > 512) — otherwise the small-matrix escape hatch
	// would honor a forced band request.
	b := NewBuilder(2000, 2000)
	for i := 0; i < 2000; i++ {
		_ = b.Add(i, (i+1)%2000, 1)
	}
	ring := b.Build()

	cases := []struct {
		m    *CSR
		in   MatrixFormat
		want MatrixFormat
	}{
		{tri, FormatAuto, FormatBand},
		{tri, "", FormatBand},
		{tri, FormatCSR, FormatCSR32},
		{tri, FormatCSR32, FormatCSR32},
		{tri, FormatBand, FormatBand},
		{tri, FormatCSR64, FormatCSR64},
		{ring, FormatAuto, FormatCSR32},
		{ring, FormatBand, FormatCSR32}, // ineligible: falls back to compact
		{ring, FormatCSR64, FormatCSR64},
	}
	for _, c := range cases {
		got, band, col32, qbd, err := resolveStorage(c.m, c.in)
		if err != nil {
			t.Fatalf("resolveStorage(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("resolveStorage(%q) = %q, want %q", c.in, got, c.want)
		}
		if (got == FormatBand) != (band != nil) {
			t.Errorf("resolveStorage(%q): band presence %v for format %q", c.in, band != nil, got)
		}
		if (got == FormatCSR32) != (col32 != nil) {
			t.Errorf("resolveStorage(%q): col32 presence %v for format %q", c.in, col32 != nil, got)
		}
		if (got == FormatQBD) != (qbd != nil) {
			t.Errorf("resolveStorage(%q): qbd presence %v for format %q", c.in, qbd != nil, got)
		}
	}
	if _, _, _, _, err := resolveStorage(tri, "bogus"); err == nil {
		t.Error("bogus format accepted")
	}
}

// TestBandRoundTripProperty is the property test of the ISSUE: random
// random-bandwidth matrices must round-trip CSR -> band -> dense with
// identical structure, and band MatVec must be bitwise identical to CSR
// MatVec on random vectors.
func TestBandRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		lo := rng.Intn(n)
		hi := rng.Intn(n)
		m := bandedFixture(t, rng, n, lo, hi)
		bd := m.BandRep()

		blo, bhi := bd.Bounds()
		mlo, mhi := m.Bandwidth()
		if blo != mlo || bhi != mhi {
			t.Fatalf("trial %d: band bounds (%d,%d) != matrix bandwidth (%d,%d)", trial, blo, bhi, mlo, mhi)
		}
		md, bdd := m.Dense(), bd.Dense()
		for i := range md {
			if md[i] != bdd[i] {
				t.Fatalf("trial %d: dense mismatch at %d: %g != %g", trial, i, md[i], bdd[i])
			}
		}

		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		want := make([]float64, n)
		got := make([]float64, n)
		if err := m.MatVec(x, want); err != nil {
			t.Fatal(err)
		}
		bd.MatVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: MatVec[%d] = %x, want %x", trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// FuzzBandRoundTrip drives the CSR <-> band round-trip from fuzzed shape
// and value seeds: whatever the bandwidth, the band representation must
// reproduce CSR MatVec bit for bit.
func FuzzBandRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(1), uint8(1))
	f.Add(int64(2), uint8(1), uint8(0), uint8(0))
	f.Add(int64(3), uint8(50), uint8(7), uint8(0))
	f.Add(int64(4), uint8(33), uint8(0), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, loRaw, hiRaw uint8) {
		n := 1 + int(nRaw)%64
		lo := int(loRaw) % n
		hi := int(hiRaw) % n
		rng := rand.New(rand.NewSource(seed))
		m := bandedFixture(t, rng, n, lo, hi)
		bd := m.BandRep()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		got := make([]float64, n)
		if err := m.MatVec(x, want); err != nil {
			t.Fatal(err)
		}
		bd.MatVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("MatVec[%d] = %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		md, bdd := m.Dense(), bd.Dense()
		for i := range md {
			if md[i] != bdd[i] {
				t.Fatalf("dense mismatch at %d: %g != %g", i, md[i], bdd[i])
			}
		}
	})
}
