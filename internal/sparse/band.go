package sparse

import (
	"math"
	"sync"
)

// This file implements the structure-adaptive storage engine behind the
// randomization sweep. The paper's flagship example — the ON-OFF
// multiplexer, 200,001 states — has a tridiagonal birth-death generator,
// and quasi-birth-death structure is pervasive across realistic Markov
// reward models. For such matrices the generic CSR kernel wastes half its
// memory traffic on column indexes (8 bytes of index per 8-byte value) in
// a loop BENCH_sweep.json shows is memory-bandwidth-bound. Two cheaper
// representations are derived lazily from the immutable CSR:
//
//   - Band (DIA-like): a dense row-major band of width lo+hi+1 holding
//     values only. The kernel computes column positions instead of
//     loading them — zero index traffic, sequential value streams, and
//     (for the interleaved order-3 layout) a fully contiguous gather
//     window per row.
//   - Compact-index CSR: the same CSR structure with uint32 column
//     indexes, halving index traffic for every matrix below 2^32
//     columns; the generic fallback when the band would waste too many
//     padded cells.
//
// Both are caches on the CSR value: built once under sync.Once, shared by
// every sweep over the same matrix (core.Prepared reuses the matrix across
// solves, so the conversion cost amortizes to zero).
//
// Bitwise contract: band kernels add padded cells as 0.0·x products into
// running sums built from +0.0 by successive +=. In round-to-nearest such
// a sum can never be -0.0 (a+b is -0.0 only when both operands are -0.0;
// exact cancellation yields +0.0), and adding ±0.0 to any value other
// than -0.0 returns it unchanged, so for finite vectors the padded
// products are bitwise neutral and the band kernel reproduces the CSR
// kernel's per-row ascending-column accumulation exactly. Non-finite
// vector entries would break this (0.0·Inf = NaN); the solver guarantees
// finiteness (spec rejects NaN/Inf inputs, core raises ErrOverflow before
// non-finite moments propagate).

// Band is a dense banded (diagonal-storage) view of a square CSR matrix:
// Val[i*Width+k] holds entry (i, i-Lo+k). Cells outside the matrix or
// without a stored CSR entry hold +0.0.
type Band struct {
	n      int
	lo, hi int // bandwidth below/above the diagonal
	width  int // lo + hi + 1
	val    []float64
}

// N returns the matrix dimension.
func (b *Band) N() int { return b.n }

// Bounds returns the band's (lo, hi) half-widths.
func (b *Band) Bounds() (lo, hi int) { return b.lo, b.hi }

// Width returns lo + hi + 1, the stored cells per row.
func (b *Band) Width() int { return b.width }

// MatVec computes y = b*x with the same per-row ascending-column
// accumulation order as CSR.MatVec; for finite x the results are bitwise
// identical (see the padded-zero analysis in the file comment).
func (b *Band) MatVec(x, y []float64) {
	n, lo, width := b.n, b.lo, b.width
	for i := 0; i < n; i++ {
		row := b.val[i*width : (i+1)*width]
		base := i - lo
		k0, k1 := 0, width
		if base < 0 {
			k0 = -base
		}
		if base+width > n {
			k1 = n - base
		}
		var sum float64
		for k := k0; k < k1; k++ {
			sum += row[k] * x[base+k]
		}
		y[i] = sum
	}
}

// Dense expands the band into a row-major n x n slice, for tests.
func (b *Band) Dense() []float64 {
	out := make([]float64, b.n*b.n)
	for i := 0; i < b.n; i++ {
		for k := 0; k < b.width; k++ {
			if j := i - b.lo + k; j >= 0 && j < b.n {
				out[i*b.n+j] = b.val[i*b.width+k]
			}
		}
	}
	return out
}

// deriv holds the lazily built derived representations of a CSR matrix.
// The zero value is ready to use; each representation is built at most
// once under its sync.Once, so concurrent sweeps over a shared matrix
// (core.Prepared) race-freely share the conversions.
type deriv struct {
	bwOnce     sync.Once
	bwLo, bwHi int

	col32Once sync.Once
	col32     []uint32

	bandOnce sync.Once
	band     *Band

	qbdOnce sync.Once
	qbdB    int // detected QBD block size, 0 = none

	qbdRepOnce sync.Once
	qbdRep     *QBD
}

func (m *CSR) derived() *deriv { return &m.dv }

// Bandwidth returns the smallest (lo, hi) such that every stored entry
// (i, j) satisfies i-lo <= j <= i+hi. The result is computed once and
// cached. An empty matrix reports (0, 0).
func (m *CSR) Bandwidth() (lo, hi int) {
	d := m.derived()
	d.bwOnce.Do(func() {
		for i := 0; i < m.rows; i++ {
			s, e := m.rowPtr[i], m.rowPtr[i+1]
			if s == e {
				continue
			}
			// Columns are sorted ascending within a row, so the first and
			// last entries bound the row's band.
			if b := i - m.colIdx[s]; b > d.bwLo {
				d.bwLo = b
			}
			if b := m.colIdx[e-1] - i; b > d.bwHi {
				d.bwHi = b
			}
		}
	})
	return d.bwLo, d.bwHi
}

// ColIdx32 returns the column indexes narrowed to uint32 — the
// compact-index CSR representation, halving index traffic in
// bandwidth-bound kernels — or nil when the matrix is too wide for 32-bit
// columns. Each index is checked against the width at build time; the
// result is cached.
func (m *CSR) ColIdx32() []uint32 {
	if m.cols > math.MaxUint32 {
		return nil
	}
	d := m.derived()
	d.col32Once.Do(func() {
		c32 := make([]uint32, len(m.colIdx))
		for k, j := range m.colIdx {
			if j < 0 || j >= m.cols {
				return // corrupt structure; leave col32 nil
			}
			c32[k] = uint32(j)
		}
		d.col32 = c32
	})
	return d.col32
}

// bandCells returns rows*(lo+hi+1), the storage cost of the band
// representation in float64 cells.
func (m *CSR) bandCells() int64 {
	lo, hi := m.Bandwidth()
	return int64(m.rows) * int64(lo+hi+1)
}

// Band eligibility thresholds. The automatic policy converts only when
// the band is narrow and nearly dense inside (padded cells cost real
// multiplies and real traffic); a forced "band" format is honored up to a
// much wider band, with an absolute small-matrix escape hatch so tests
// and tiny models can always exercise the band kernel.
const (
	maxAutoBandWidth   = 32
	maxForcedBandWidth = 512
	smallBandCells     = 1 << 16
)

// bandEligible reports whether the band representation should be used for
// this matrix under the given policy (forced = the caller explicitly
// requested "band" rather than "auto").
func (m *CSR) bandEligible(forced bool) bool {
	if m.rows != m.cols || m.rows == 0 {
		return false
	}
	lo, hi := m.Bandwidth()
	width := lo + hi + 1
	cells, nnz := m.bandCells(), int64(m.NNZ())
	if forced {
		return width <= maxForcedBandWidth && (cells <= 4*nnz || cells <= smallBandCells)
	}
	return width <= maxAutoBandWidth && cells <= 2*nnz
}

// BandRep returns the cached band representation, building it on first
// call. Callers gate on bandEligible (or accept the O(rows*width) memory
// cost knowingly); the conversion itself is valid for any square matrix.
func (m *CSR) BandRep() *Band {
	d := m.derived()
	d.bandOnce.Do(func() {
		lo, hi := m.Bandwidth()
		width := lo + hi + 1
		b := &Band{n: m.rows, lo: lo, hi: hi, width: width,
			val: make([]float64, m.rows*width)}
		for i := 0; i < m.rows; i++ {
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				b.val[i*width+(m.colIdx[p]-i+lo)] = m.val[p]
			}
		}
		d.band = b
	})
	return d.band
}
